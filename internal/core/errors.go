package core

import (
	"errors"
	"fmt"
)

// ErrBadEvent is the sentinel wrapped by every event-validation failure, so
// callers can classify malformed-input errors with errors.Is(err, ErrBadEvent)
// without depending on the specific reason.
var ErrBadEvent = errors.New("core: invalid trace event")

// BadEventError reports a trace event the analyzer rejected before letting
// it near the DDG state: an unknown opcode, a memory operation with no size
// or segment, or a segment tag inconsistent with its address.
type BadEventError struct {
	// Index is the zero-based position of the event in the stream fed to
	// this analyzer.
	Index uint64
	// PC is the event's program counter, for locating the damage.
	PC uint32
	// Reason describes what was wrong.
	Reason string
}

func (e *BadEventError) Error() string {
	return fmt.Sprintf("core: invalid trace event %d (pc %#x): %s", e.Index, e.PC, e.Reason)
}

// Unwrap makes errors.Is(err, ErrBadEvent) true.
func (e *BadEventError) Unwrap() error { return ErrBadEvent }

// AnalysisError wraps a failure inside the analyzer — most importantly a
// panic in the placement machinery converted to an error — with enough
// position information to find the triggering event in the trace.
type AnalysisError struct {
	// Event is the zero-based index of the event being processed when the
	// analysis failed. For failures in Finish it is the total number of
	// events consumed.
	Event uint64
	// Stage identifies where the failure happened: "event", "finish", or a
	// pipeline stage name such as "discovery".
	Stage string
	// Cause is the underlying error; recovered panics appear as a
	// descriptive error carrying the panic value.
	Cause error
}

func (e *AnalysisError) Error() string {
	return fmt.Sprintf("core: analysis failed at event %d (%s): %v", e.Event, e.Stage, e.Cause)
}

func (e *AnalysisError) Unwrap() error { return e.Cause }

// recoveredError converts a recovered panic value into an error.
func recoveredError(v any) error {
	if err, ok := v.(error); ok {
		return fmt.Errorf("internal panic: %w", err)
	}
	return fmt.Errorf("internal panic: %v", v)
}
