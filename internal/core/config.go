// Package core implements Paragraph, the paper's dynamic-dependency-graph
// (DDG) analyzer. It consumes a serial execution trace (package trace) in a
// single forward pass and produces the paper's metrics: critical path
// length, available parallelism, the parallelism profile, and (optionally)
// value-lifetime and degree-of-sharing distributions.
//
// # The live well and the placement rule
//
// The analyzer never materializes the DDG. Instead it keeps a hash table of
// live values — the live well — mapping each storage location (register or
// memory word) to the DDG level at which its current value becomes
// available, the deepest level at which that value has been consumed, and
// its consumer count. Each value-creating instruction is assigned the level
//
//	Ldest = MAX(Lsrc1, Lsrc2, ..., highestLevel-1 [, Ddest+1]) + top
//
// where Lsrc are the availability levels of its sources, top is the
// operation time from the paper's Table 1 (isa.OpClass.Latency), and the
// Ddest+1 term — present only when storage dependencies for the destination
// are being kept, i.e. renaming is off for that location class — forces the
// new value to be created only after the previous value in the same location
// has been fully consumed (WAR) and created (WAW).
//
// highestLevel implements firewalls: values that pre-exist (registers at
// startup, DATA-segment memory) enter the live well at highestLevel-1 so
// they never delay computation, and system calls under the conservative
// policy raise highestLevel past the deepest level yet used so that no later
// operation can be placed above them. The sliding instruction window is
// implemented the same way: an instruction displaced from the window raises
// highestLevel past its own level.
package core

import (
	"paragraph/internal/budget"
	"paragraph/internal/isa"
)

// SyscallPolicy selects how system calls constrain the DDG, mirroring the
// paper's "System Calls Stall" switch.
type SyscallPolicy uint8

const (
	// SyscallConservative assumes a system call modifies every live
	// value: a firewall is placed after the deepest computation and all
	// later operations are placed below it. This bounds the true
	// parallelism from below.
	SyscallConservative SyscallPolicy = iota
	// SyscallOptimistic assumes a system call modifies nothing; the
	// instruction is ignored. This bounds the true parallelism from
	// above.
	SyscallOptimistic
)

func (p SyscallPolicy) String() string {
	if p == SyscallConservative {
		return "conservative"
	}
	return "optimistic"
}

// Config carries the analysis switches of Section 3.2 of the paper. The
// zero value is the most constrained sensible configuration: conservative
// system calls, no renaming anywhere, unlimited window and functional
// units.
type Config struct {
	// Syscalls selects the system-call policy.
	Syscalls SyscallPolicy

	// RenameRegisters removes storage dependencies on registers
	// (unbounded physical registers assumed).
	RenameRegisters bool
	// RenameStack removes storage dependencies on stack-segment memory.
	RenameStack bool
	// RenameData removes storage dependencies on non-stack memory (the
	// static data segment and the heap).
	RenameData bool

	// WindowSize limits how many contiguous trace instructions are
	// visible at once when placing operations; 0 means the window spans
	// the whole trace (no control constraint). Every trace instruction,
	// including branches, occupies a window slot, exactly as a hardware
	// instruction window would hold them.
	WindowSize int

	// FunctionalUnits caps how many operations may be executing in any
	// single DDG level; 0 means unlimited. Each operation occupies one
	// generic unit for its entire latency.
	FunctionalUnits int

	// Branches selects the control-dependency model: perfect prediction
	// (the paper's default), firewalls on every branch, or firewalls on
	// the mispredictions of a static or two-bit predictor.
	Branches BranchPolicy
	// PredictorBits sizes the two-bit predictor table (2^bits counters);
	// 0 selects the default of 12.
	PredictorBits int

	// UnitLatency, when set, gives every operation a latency of one
	// level instead of the Table-1 values. Used by ablation studies to
	// isolate the effect of operation latencies on the critical path.
	UnitLatency bool
	// LatencyOverride replaces the Table-1 operation time for specific
	// classes (e.g. modelling a 3-cycle multiplier or a 20-cycle
	// divider); classes not present keep their defaults. Ignored when
	// UnitLatency is set.
	LatencyOverride map[isa.OpClass]int

	// ProfileBuckets bounds the resolution of the parallelism profile;
	// 0 selects stats.DefaultMaxBuckets. Ignored when Profile is false.
	ProfileBuckets int
	// Profile enables collection of the parallelism profile. Leaving it
	// off makes sweeps (Table 4, Figure 8) cheaper.
	Profile bool

	// StorageProfile enables collection of the live-well occupancy curve
	// (live memory words per trace position) — the "memory requirement
	// profile" of the Kumar study the paper builds on.
	StorageProfile bool

	// Lifetimes enables the value-lifetime distribution (levels between
	// a value's creation and its last use).
	Lifetimes bool
	// Sharing enables the degree-of-sharing distribution (number of
	// consumers per value).
	Sharing bool

	// MemBudget bounds the analyzer's tracked working set — live well,
	// window state, functional-unit schedule — in estimated bytes;
	// 0 disables governance entirely (the default, and the byte-identical
	// legacy behaviour). Usage is checked every budget.CheckEvery events,
	// so the hot loop pays nothing measurable.
	MemBudget int64
	// BudgetPolicy selects the response to budget pressure: fail fast
	// with a structured budget.Error (the zero value), degrade by
	// tightening the effective instruction window, or warn-only.
	// Ignored when MemBudget is 0.
	BudgetPolicy budget.Policy
}

// Dataflow returns the paper's upper-bound configuration: all renaming on,
// unlimited window and functional units. The syscall policy is the given
// one; the paper reports both.
func Dataflow(p SyscallPolicy) Config {
	return Config{
		Syscalls:        p,
		RenameRegisters: true,
		RenameStack:     true,
		RenameData:      true,
		Profile:         true,
	}
}

// Clone returns a deep copy of the configuration: the LatencyOverride map,
// the only reference-typed field, is copied rather than shared. NewAnalyzer
// clones its argument, so any number of analyzers built from one Config
// value — including concurrently, as the harness fan-out engine does — hold
// fully independent state even if the caller later mutates the original map.
func (c Config) Clone() Config {
	out := c
	if c.LatencyOverride != nil {
		out.LatencyOverride = make(map[isa.OpClass]int, len(c.LatencyOverride))
		for k, v := range c.LatencyOverride {
			out.LatencyOverride[k] = v
		}
	}
	return out
}

// latency returns the operation time in DDG levels under this config.
func (c *Config) latency(op isa.Op) int64 {
	if c.UnitLatency {
		return 1
	}
	if len(c.LatencyOverride) > 0 {
		if t, ok := c.LatencyOverride[op.Class()]; ok && t > 0 {
			return int64(t)
		}
	}
	return int64(op.Latency())
}
