package core

import (
	"errors"
	"fmt"

	"paragraph/internal/isa"
	"paragraph/internal/trace"
)

// Shared dependence extraction: the expensive half of analysis — event
// validation, live-well slot resolution, memory-word hashing — depends only
// on the event stream and the rename/syscall policy, while everything a
// sweep varies (window size, functional units, branch policy, latencies,
// profiles, budgets) only affects the cheap max-plus replay. A
// DependenceResolver therefore consumes the trace once per rename group and
// compiles it into DepSegments — the same slot-addressed record stream a
// ShardDelta carries, cut into bounded batches — and any number of
// Schedulers replay those segments with pure array indexing, one per config.
// An 8-window Figure 8 sweep costs 1× resolution + 8× scheduling instead of
// 8× full analysis.
//
// Unlike a ShardDelta, the record stream always starts at event 0 with an
// empty machine, so slot ids are globally dense in first-touch order and a
// scheduler's slot table is never materialized from a live well: slots start
// dead and spring to life exactly when a sequential analyzer would first
// touch the location. Branch records are always emitted in full (PC,
// direction sign, outcome, source slots) regardless of branch policy — a
// perfect-branch scheduler consumes and ignores them — so one resolution
// serves every branch policy in the group; that is why ResolveSig, unlike
// BuildSig, excludes Branches.

// ResolveSig identifies the configuration switches compiled into a
// resolver's record stream. Configs with equal signatures can share one
// resolution; everything outside the signature is applied at schedule time.
type ResolveSig struct {
	Syscalls        SyscallPolicy
	RenameRegisters bool
	RenameStack     bool
	RenameData      bool
}

// SigOf returns the resolve signature of a config.
func SigOf(cfg *Config) ResolveSig {
	return ResolveSig{
		Syscalls:        cfg.Syscalls,
		RenameRegisters: cfg.RenameRegisters,
		RenameStack:     cfg.RenameStack,
		RenameData:      cfg.RenameData,
	}
}

// DepSegment is one bounded batch of the dependence-record stream. Segments
// are immutable once emitted and are shared read-only by every scheduler in
// the group.
type DepSegment struct {
	// NewLocs lists the locations first touched in this segment, in slot-id
	// order: the slot table grows by exactly these entries (register number,
	// or word address with deltaMemLoc set) before Code replays.
	NewLocs []uint32
	// Code is the flat record stream, same encoding as ShardDelta.Code.
	Code []uint32
	// Events is the number of events compiled into Code.
	Events uint64
}

// ResolveTotals carries the entry-state-independent scalar results of a
// resolution, folded into each scheduler's Result at Finish.
type ResolveTotals struct {
	Events      uint64
	Syscalls    uint64
	ClassCounts [16]uint64
}

// resolveSegWords cuts segments at ~512 KB of code: big enough that the
// per-segment fan-out cost vanishes against replay and that each scheduler
// gets a long cache-resident quantum between ring switches (on few cores
// the schedulers time-slice, and every switch refills the slot table),
// small enough that N schedulers lagging a full ring of segments stay
// within the memory budget accounting in the harness.
const resolveSegWords = 128 << 10

// ResolveSegmentBytes bounds the bytes one emitted DepSegment holds: Code
// is cut at resolveSegWords plus at most one record of overshoot (a store
// touches at most 65 words), and NewLocs never exceeds the slot references
// in Code. The harness uses it to fit the segment ring into a memory
// budget the way trace.RingFootprint fits the event ring.
const ResolveSegmentBytes = int64(resolveSegWords+160) * 2 * 4

// Resolver is the config-invariant stage-1 pass. It implements trace.Sink
// and trace.BatchSink, validating events exactly as a sequential analyzer
// does (same absolute indices, same error values) and compiling them into
// DepSegments delivered through the emit callback. It owns the slot tables
// — the only hashing in the whole sweep happens here, once.
//
// On a validation error the records for every event before the bad one are
// still emitted by Flush, so schedulers observe the same prefix a
// sequential analyzer would have analyzed before failing.
type Resolver struct {
	sig  ResolveSig
	emit func(*DepSegment) error

	regSlot [isa.NumRegs]int32
	memSlot *slotTable
	srcBuf  []isa.Reg

	// slotBase counts the slots allocated in all flushed segments; ids stay
	// globally dense across segment cuts.
	slotBase uint32
	seg      DepSegment
	totals   ResolveTotals
	recycle  bool
}

// NewResolver starts a resolution for the given signature. Only the
// signature fields of cfg are consulted; latencies, windows, units and
// profiles belong to the schedulers. Emitted segments must not be mutated.
func NewResolver(cfg Config, emit func(*DepSegment) error) *Resolver {
	r := &Resolver{
		sig:     SigOf(&cfg),
		emit:    emit,
		memSlot: newSlotTable(),
	}
	for i := range r.regSlot {
		r.regSlot[i] = -1
	}
	return r
}

// Sig returns the resolver's signature.
func (r *Resolver) Sig() ResolveSig { return r.sig }

// Recycle puts the resolver in segment-recycling mode: the backing arrays of
// an emitted segment are reused for the next one as soon as emit returns,
// so a full-trace resolution allocates two fixed buffers instead of one pair
// per segment. Only valid when the emit callback consumes the segment
// completely before returning — synchronous scheduling does; a ring
// broadcast, whose consumers hold segment references across emits, must not
// enable it.
func (r *Resolver) Recycle() { r.recycle = true }

// Totals returns the scalar totals accumulated so far. Stable only after
// the final Flush.
func (r *Resolver) Totals() ResolveTotals { return r.totals }

// regSlotID resolves a register to its slot, allocating on first touch.
func (r *Resolver) regSlotID(reg isa.Reg) uint32 {
	if id := r.regSlot[reg]; id >= 0 {
		return uint32(id)
	}
	id := r.nextSlot()
	r.regSlot[reg] = int32(id)
	r.seg.NewLocs = append(r.seg.NewLocs, uint32(reg))
	return id
}

// memSlotID resolves a memory word to its slot, allocating on first touch.
func (r *Resolver) memSlotID(w uint32) uint32 {
	if id := r.memSlot.lookup(w); id >= 0 {
		return uint32(id)
	}
	id := r.nextSlot()
	r.memSlot.insert(w, int32(id))
	r.seg.NewLocs = append(r.seg.NewLocs, w|deltaMemLoc)
	return id
}

// nextSlot returns the next globally dense slot id: the count of slots
// allocated in all flushed segments plus those pending in the current one.
func (r *Resolver) nextSlot() uint32 {
	return r.slotBase + uint32(len(r.seg.NewLocs))
}

// Event implements trace.Sink.
func (r *Resolver) Event(e *trace.Event) error {
	if err := r.build(e); err != nil {
		return err
	}
	return r.maybeFlush()
}

// Events implements trace.BatchSink.
func (r *Resolver) Events(batch []trace.Event) error {
	for i := range batch {
		if err := r.build(&batch[i]); err != nil {
			return err
		}
		if len(r.seg.Code) >= resolveSegWords {
			if err := r.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r *Resolver) maybeFlush() error {
	if len(r.seg.Code) >= resolveSegWords {
		return r.Flush()
	}
	return nil
}

// Flush emits the pending segment, if any. The producer calls it once more
// after the last event to deliver the final partial segment.
func (r *Resolver) Flush() error {
	if len(r.seg.Code) == 0 && len(r.seg.NewLocs) == 0 {
		return nil
	}
	r.slotBase += uint32(len(r.seg.NewLocs))
	seg := r.seg
	if r.recycle {
		// The callback consumes the segment before returning (Recycle's
		// contract), so its arrays can back the next segment.
		err := r.emit(&seg)
		r.seg = DepSegment{NewLocs: seg.NewLocs[:0], Code: seg.Code[:0]}
		return err
	}
	// Fresh backing arrays: consumers keep references to emitted segments.
	r.seg = DepSegment{
		NewLocs: make([]uint32, 0, 256),
		Code:    make([]uint32, 0, resolveSegWords+256),
	}
	return r.emit(&seg)
}

// build compiles one event, mirroring DeltaBuilder.build except that branch
// records are always full and syscall handling follows the signature.
func (r *Resolver) build(e *trace.Event) error {
	seq := r.totals.Events
	if verr := validateEvent(e, seq); verr != nil {
		return verr
	}
	r.totals.Events++
	r.seg.Events++

	op := e.Ins.Op
	info := op.Info()
	r.totals.ClassCounts[info.Class]++

	w0 := uint32(deltaKindSkip) | uint32(op)<<8
	switch {
	case op == isa.NOP:
		r.seg.Code = append(r.seg.Code, w0)
		return nil
	case e.IsSyscall():
		r.totals.Syscalls++
		if r.sig.Syscalls == SyscallOptimistic {
			r.seg.Code = append(r.seg.Code, w0)
			return nil
		}
		r.seg.Code = append(r.seg.Code, w0|deltaKindSyscall)
		return nil
	case info.IsJump:
		if dst, ok := e.Ins.Dest(); ok {
			r.seg.Code = append(r.seg.Code, w0|deltaKindJump|1<<24, r.regSlotID(dst))
		} else {
			r.seg.Code = append(r.seg.Code, w0)
		}
		return nil
	case info.IsBranch:
		w0 |= deltaKindBranch
		if e.Taken {
			w0 |= deltaFlagTaken
		}
		if e.Ins.Imm < 0 {
			w0 |= deltaFlagImmNeg
		}
		r.srcBuf = e.Ins.SourceRegs(r.srcBuf[:0])
		nsrc := uint32(0)
		at := len(r.seg.Code)
		r.seg.Code = append(r.seg.Code, 0, e.PC)
		for _, reg := range r.srcBuf {
			if reg == isa.Zero {
				continue
			}
			r.seg.Code = append(r.seg.Code, r.regSlotID(reg))
			nsrc++
		}
		r.seg.Code[at] = w0 | nsrc<<16
		return nil
	}

	// Ordinary placement; slot emission order matches the live-well touch
	// order of a sequential analyzer exactly as in DeltaBuilder.build.
	w0 |= deltaKindPlace
	at := len(r.seg.Code)
	r.seg.Code = append(r.seg.Code, 0)

	r.srcBuf = e.Ins.SourceRegs(r.srcBuf[:0])
	nsrc := uint32(0)
	for _, reg := range r.srcBuf {
		if reg == isa.Zero {
			continue
		}
		r.seg.Code = append(r.seg.Code, r.regSlotID(reg))
		nsrc++
	}
	if info.IsLoad {
		lo, hi := wordRange(e.MemAddr, e.MemSize)
		for w := lo; w <= hi; w++ {
			r.seg.Code = append(r.seg.Code, r.memSlotID(w))
			nsrc++
		}
	}

	ndst := uint32(0)
	regTerm := uint32(0)
	if !r.sig.RenameRegisters {
		regTerm = deltaStorageTerm
	}
	var dbuf [2]isa.Reg
	for _, dst := range regDests(&e.Ins, dbuf[:0]) {
		if dst == isa.Zero {
			continue
		}
		r.seg.Code = append(r.seg.Code, r.regSlotID(dst)|regTerm)
		ndst++
	}
	if info.IsStore {
		w0 |= deltaFlagIsStore
		memTerm := uint32(deltaStorageTerm)
		if e.Seg == trace.SegStack && r.sig.RenameStack ||
			e.Seg != trace.SegStack && r.sig.RenameData {
			memTerm = 0
		}
		lo, hi := wordRange(e.MemAddr, e.MemSize)
		for w := lo; w <= hi; w++ {
			r.seg.Code = append(r.seg.Code, r.memSlotID(w)|memTerm)
			ndst++
		}
	}
	r.seg.Code[at] = w0 | nsrc<<16 | ndst<<24
	return nil
}

// Scheduler is the per-config stage-2 pass: a fresh analyzer whose events
// arrive as dependence records instead of trace events. Replay maintains
// every level-dependent structure — firewall floor, window displacement, FU
// counting, predictor, governor cadence, histograms — with array indexing
// only; no hashing, no live well until the final write-back.
type Scheduler struct {
	a    *Analyzer
	rp   deltaReplay
	locs []uint32 // slot id -> location key, for Finish-time write-back
}

// NewScheduler creates a scheduler for one config. The caller is
// responsible for feeding it segments resolved under SigOf(&cfg); the
// harness groups configs by signature to guarantee that.
func NewScheduler(cfg Config) *Scheduler {
	s := &Scheduler{a: NewAnalyzer(cfg)}
	s.rp.init(s.a)
	return s
}

// Apply replays one segment. Segments must arrive in emission order.
func (s *Scheduler) Apply(seg *DepSegment) (err error) {
	a := s.a
	if a.finished {
		return errors.New("core: Event after Finish")
	}
	start := a.instructions
	defer func() {
		if v := recover(); v != nil {
			ev := a.instructions
			if ev > start {
				ev-- // the panic came from the record being replayed
			}
			err = &AnalysisError{Event: ev, Stage: "event", Cause: recoveredError(v)}
		}
	}()
	for _, loc := range seg.NewLocs {
		s.locs = append(s.locs, loc)
		s.rp.slots = append(s.rp.slots, deltaSlot{isMem: loc&deltaMemLoc != 0})
	}
	return s.rp.run(seg.Code)
}

// Finish folds the resolver's totals and produces the Result. The totals'
// event count must match the number of events replayed — a mismatch means
// segments were dropped or misordered and the result would be silently
// wrong.
func (s *Scheduler) Finish(totals ResolveTotals) (*Result, error) {
	a := s.a
	if a.finished {
		return nil, errors.New("core: Finish called twice")
	}
	if totals.Events != a.instructions {
		return nil, fmt.Errorf("core: scheduler replayed %d events but resolver produced %d", a.instructions, totals.Events)
	}
	// Write live slots back into the well so Finish observes the same
	// terminal state — end-of-trace retirement for lifetime/sharing
	// statistics included — as a sequential run. Slots that stayed dead
	// (e.g. sources of never-mispredicted branches) must not become live.
	for i := range s.rp.slots {
		sl := &s.rp.slots[i]
		if !sl.live {
			continue
		}
		if loc := s.locs[i]; loc&deltaMemLoc != 0 {
			a.well.memPut(loc&^deltaMemLoc, sl.val)
		} else {
			a.well.regs[loc] = sl.val
			a.well.regLive[loc] = true
		}
	}
	a.syscalls += totals.Syscalls
	for c, n := range totals.ClassCounts {
		a.classCounts[c] += n
	}
	return a.Finish()
}
