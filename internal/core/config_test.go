package core

import (
	"reflect"
	"sync"
	"testing"

	"paragraph/internal/isa"
	"paragraph/internal/trace"
)

// TestConfigClone verifies the deep copy: mutating the original's
// LatencyOverride map after cloning must not leak into the clone.
func TestConfigClone(t *testing.T) {
	orig := Dataflow(SyscallConservative)
	orig.LatencyOverride = map[isa.OpClass]int{isa.ClassIntMul: 3}
	clone := orig.Clone()
	if !reflect.DeepEqual(orig, clone) {
		t.Fatalf("clone differs: %+v vs %+v", orig, clone)
	}
	orig.LatencyOverride[isa.ClassIntMul] = 20
	orig.LatencyOverride[isa.ClassIntDiv] = 99
	if clone.LatencyOverride[isa.ClassIntMul] != 3 || len(clone.LatencyOverride) != 1 {
		t.Errorf("clone shares the override map: %v", clone.LatencyOverride)
	}

	// A nil map stays nil — important for DeepEqual comparisons between
	// Results of independently built analyzers.
	var zero Config
	if zero.Clone().LatencyOverride != nil {
		t.Error("cloning a nil override map materialized it")
	}
}

// TestAnalyzerClonesConfig pins NewAnalyzer's isolation guarantee: an
// analyzer is immune to later mutation of the Config it was built from.
func TestAnalyzerClonesConfig(t *testing.T) {
	cfg := Dataflow(SyscallConservative)
	cfg.Profile = false
	cfg.LatencyOverride = map[isa.OpClass]int{isa.ClassIntALU: 1}
	events := []trace.Event{
		evAddi(isa.T0, isa.Zero, 1),
		evAdd(isa.T1, isa.T0, isa.T0),
		evAdd(isa.T2, isa.T1, isa.T1),
	}
	a := NewAnalyzer(cfg)
	cfg.LatencyOverride[isa.ClassIntALU] = 50 // must not affect a
	for i := range events {
		if err := a.Event(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	res := a.MustFinish()
	// Three chained one-level ALU ops: critical path 3 under the original
	// override, 150 under the mutated map.
	if res.CriticalPath != 3 {
		t.Errorf("critical path %d: analyzer saw the mutated override map", res.CriticalPath)
	}
}

// TestConcurrentAnalyzersIndependent runs many analyzers built from the
// same Config value concurrently over the same event sequence (the fan-out
// engine's exact access pattern) and requires bit-identical results. Run
// with -race, this doubles as the shared-state audit for the live well.
func TestConcurrentAnalyzersIndependent(t *testing.T) {
	cfg := Dataflow(SyscallConservative)
	cfg.Lifetimes = true
	cfg.Sharing = true
	cfg.LatencyOverride = map[isa.OpClass]int{isa.ClassIntMul: 4}

	var events []trace.Event
	for i := 0; i < 2000; i++ {
		switch i % 5 {
		case 0:
			events = append(events, evAddi(isa.IntReg(8+i%16), isa.Zero, int32(i)))
		case 1:
			events = append(events, evAdd(isa.T1, isa.T0, isa.T1))
		case 2:
			events = append(events, evStore(isa.T1, 0x10000000+uint32(i%128)*4, trace.SegData))
		case 3:
			events = append(events, evLoad(isa.T3, 0x10000000+uint32(i%128)*4, trace.SegData))
		default:
			events = append(events, evSyscall())
		}
	}

	const n = 8
	results := make([]*Result, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			a := NewAnalyzer(cfg)
			for i := range events {
				e := events[i]
				if err := a.Event(&e); err != nil {
					t.Errorf("analyzer %d: event %d: %v", k, i, err)
					return
				}
			}
			r, err := a.Finish()
			if err != nil {
				t.Errorf("analyzer %d: %v", k, err)
				return
			}
			results[k] = r
		}(k)
	}
	wg.Wait()
	for k := 1; k < n; k++ {
		if !reflect.DeepEqual(results[0], results[k]) {
			t.Fatalf("analyzer %d result differs from analyzer 0:\n%+v\nvs\n%+v",
				k, results[k], results[0])
		}
	}
}
