package core

import (
	"math/rand"
	"testing"

	"paragraph/internal/isa"
	"paragraph/internal/trace"
)

func evBranch(pc uint32, rs isa.Reg, imm int32, taken bool) trace.Event {
	return trace.Event{
		PC:    pc,
		Ins:   isa.Instruction{Op: isa.BNE, Rs: rs, Rt: isa.Zero, Imm: imm},
		Taken: taken,
	}
}

// TestBranchStallFirewalls: with the stall policy every branch firewalls
// the DDG, so independent work separated by branches serializes.
func TestBranchStallFirewalls(t *testing.T) {
	events := []trace.Event{
		evAddi(isa.T0, isa.Zero, 1),          // L0
		evBranch(0x400004, isa.T0, -1, true), // resolves at L1, firewall
		evAddi(isa.T1, isa.Zero, 2),          // forced below: L2
		evBranch(0x40000c, isa.T1, -1, true), // resolves at L3
		evAddi(isa.T2, isa.Zero, 3),          // L4
	}
	perfect := Dataflow(SyscallConservative)
	r := analyze(t, perfect, events)
	if r.CriticalPath != 1 {
		t.Errorf("perfect: critical path = %d, want 1 (all addi independent)", r.CriticalPath)
	}
	stall := Dataflow(SyscallConservative)
	stall.Branches = BranchStall
	r = analyze(t, stall, events)
	if r.CriticalPath != 5 {
		t.Errorf("stall: critical path = %d, want 5", r.CriticalPath)
	}
	if r.Branches != 2 || r.Mispredictions != 2 {
		t.Errorf("stall: branches=%d mispredicts=%d, want 2/2", r.Branches, r.Mispredictions)
	}
}

// TestBranchStaticBTFN: backward-taken predictions are correct for
// backward-taken branches and wrong for forward-taken ones.
func TestBranchStaticBTFN(t *testing.T) {
	events := []trace.Event{
		evAddi(isa.T0, isa.Zero, 1),
		evBranch(0x400004, isa.T0, -4, true), // backward taken: predicted
		evAddi(isa.T1, isa.Zero, 2),
		evBranch(0x40000c, isa.T1, +4, true), // forward taken: mispredicted
		evAddi(isa.T2, isa.Zero, 3),
	}
	cfg := Dataflow(SyscallConservative)
	cfg.Branches = BranchStatic
	r := analyze(t, cfg, events)
	if r.Branches != 2 || r.Mispredictions != 1 {
		t.Errorf("branches=%d mispredicts=%d, want 2/1", r.Branches, r.Mispredictions)
	}
	// Only the second branch firewalls: t2 forced below it.
	if r.CriticalPath != 3 {
		t.Errorf("critical path = %d, want 3", r.CriticalPath)
	}
}

// TestBranchTwoBitLearns: a two-bit counter mispredicts a steady branch at
// most twice, then tracks it.
func TestBranchTwoBitLearns(t *testing.T) {
	var events []trace.Event
	for i := 0; i < 50; i++ {
		events = append(events, evAddi(isa.T0, isa.Zero, int32(i)))
		events = append(events, evBranch(0x400100, isa.T0, -8, true))
	}
	cfg := Dataflow(SyscallConservative)
	cfg.Branches = BranchTwoBit
	r := analyze(t, cfg, events)
	if r.Branches != 50 {
		t.Fatalf("branches = %d", r.Branches)
	}
	if r.Mispredictions > 2 {
		t.Errorf("mispredictions = %d, want <= 2 for a monotone branch", r.Mispredictions)
	}
}

// TestBranchTwoBitAlternating: a strictly alternating branch defeats a
// two-bit counter initialized weakly-not-taken no worse than 100% and at
// least 50%.
func TestBranchTwoBitAlternating(t *testing.T) {
	var events []trace.Event
	for i := 0; i < 40; i++ {
		events = append(events, evAddi(isa.T0, isa.Zero, int32(i)))
		events = append(events, evBranch(0x400200, isa.T0, -8, i%2 == 0))
	}
	cfg := Dataflow(SyscallConservative)
	cfg.Branches = BranchTwoBit
	r := analyze(t, cfg, events)
	rate := float64(r.Mispredictions) / float64(r.Branches)
	if rate < 0.4 {
		t.Errorf("alternating branch mispredict rate = %.2f, want >= 0.4", rate)
	}
}

// TestBranchResolutionDepth: a mispredicted branch whose condition comes
// from a deep chain stalls later work until the chain resolves.
func TestBranchResolutionDepth(t *testing.T) {
	var events []trace.Event
	for i := 0; i < 10; i++ {
		events = append(events, evAddi(isa.T0, isa.T0, 1)) // chain to L10
	}
	events = append(events, evBranch(0x400000, isa.T0, +4, true)) // resolves at L11
	events = append(events, evAddi(isa.T1, isa.Zero, 1))          // forced to L12
	cfg := Dataflow(SyscallConservative)
	cfg.Branches = BranchStall
	r := analyze(t, cfg, events)
	if r.CriticalPath != 12 {
		t.Errorf("critical path = %d, want 12", r.CriticalPath)
	}
}

// TestBranchPolicyMonotonic: better prediction never reduces parallelism.
func TestBranchPolicyMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	base := randomTrace(rng, 300)
	// Sprinkle branches with plausible taken patterns.
	var events []trace.Event
	for i, e := range base {
		events = append(events, e)
		if i%7 == 3 {
			events = append(events, evBranch(uint32(0x400000+8*i), isa.T0, -4, i%3 != 0))
		}
	}
	policies := []BranchPolicy{BranchStall, BranchStatic, BranchTwoBit, BranchPerfect}
	var prevStall, prevPerfect float64
	for i, p := range policies {
		cfg := Dataflow(SyscallConservative)
		cfg.Profile = false
		cfg.Branches = p
		r := analyze(t, cfg, events)
		if i == 0 {
			prevStall = r.Available
		}
		if p == BranchPerfect {
			prevPerfect = r.Available
		}
	}
	if prevPerfect < prevStall-1e-9 {
		t.Errorf("perfect (%.2f) below stall (%.2f)", prevPerfect, prevStall)
	}
}

// TestBranchPolicyStrings covers the Stringer.
func TestBranchPolicyStrings(t *testing.T) {
	for p, want := range map[BranchPolicy]string{
		BranchPerfect: "perfect", BranchStall: "stall",
		BranchStatic: "static-btfn", BranchTwoBit: "two-bit",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

// TestPredictorTableBounds: extreme PredictorBits values are clamped.
func TestPredictorTableBounds(t *testing.T) {
	p := newPredictor(BranchTwoBit, -5)
	if len(p.counters) != 1<<defaultPredictorBits {
		t.Errorf("default table size = %d", len(p.counters))
	}
	p = newPredictor(BranchTwoBit, 30)
	if len(p.counters) != 1<<24 {
		t.Errorf("clamped table size = %d", len(p.counters))
	}
}
