package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"paragraph/internal/isa"
	"paragraph/internal/trace"
)

// Property tests on the analyzer's internal data structures.

// TestQuickWordRange: the word range of any access covers exactly the bytes
// [addr, addr+size), is non-empty for size > 0, and spans at most
// ceil((size+3)/4) words.
func TestQuickWordRange(t *testing.T) {
	f := func(addr uint32, sizeSel uint8) bool {
		sizes := []uint8{1, 2, 4, 8}
		size := sizes[int(sizeSel)%len(sizes)]
		if addr > 0xffffff00 {
			addr = 0xffffff00 // avoid wrap, as real accesses do
		}
		lo, hi := wordRange(addr, size)
		if lo > hi {
			return false
		}
		// First and last byte must fall inside the range.
		if addr>>2 != lo {
			return false
		}
		if (addr+uint32(size)-1)>>2 != hi {
			return false
		}
		return hi-lo <= uint32(size+3)/4
	}
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
	// Zero size yields the canonical empty range.
	if lo, hi := wordRange(123, 0); lo <= hi {
		t.Errorf("zero-size range not empty: [%d, %d]", lo, hi)
	}
}

// TestQuickFUSchedule: for any sequence of (base, top) requests, the chosen
// base never precedes the data-ready base, and no level ever holds more
// than the configured number of units.
func TestQuickFUSchedule(t *testing.T) {
	f := func(seed int64, unitSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		units := 1 + int(unitSel)%4
		fu := newFUSchedule(units)
		occupancy := make(map[int64]int)
		base := int64(-1)
		for i := 0; i < 200; i++ {
			// Data-ready bases drift forward with occasional jumps
			// back, as real source levels do.
			req := base + int64(rng.Intn(5)) - 2
			if req < -1 {
				req = -1
			}
			top := int64(1 + rng.Intn(12))
			got := fu.schedule(req, top)
			if got < req {
				return false
			}
			for l := got + 1; l <= got+top; l++ {
				occupancy[l]++
				if occupancy[l] > units {
					return false
				}
			}
			if got > base {
				base = got
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(37))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLiveWellSingleAssignment: after any sequence of register binds,
// the live well returns exactly the most recent record for each register,
// and pre-existing lookups track the current floor.
func TestQuickLiveWellSingleAssignment(t *testing.T) {
	f := func(ops []uint16) bool {
		w := newLiveWell()
		w.preLevel = -1
		last := make(map[uint8]int64)
		for i, op := range ops {
			r := uint8(op % 64) // int + FP registers
			level := int64(i)
			w.setReg(isa.Reg(r), value{level: level, lastUse: level})
			last[r] = level
		}
		for r, want := range last {
			rec := w.reg(isa.Reg(r))
			if rec.level != want {
				return false
			}
		}
		// An untouched register reads as pre-existing at the floor.
		if len(last) < 64 {
			for r := uint8(0); r < 64; r++ {
				if _, bound := last[r]; !bound {
					if w.reg(isa.Reg(r)).level != w.preLevel {
						return false
					}
					break
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeathScheduleConservation: every store creates a value that
// eventually dies (by overwrite or at trace end), so the schedule's death
// count must equal the store count exactly.
func TestQuickDeathScheduleConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var events []trace.Event
		stores := 0
		for i := 0; i < 100; i++ {
			addr := uint32(0x10000000 + 4*rng.Intn(8))
			if rng.Intn(2) == 0 {
				events = append(events, evStore(isa.T0, addr, trace.SegData))
				stores++
			} else {
				events = append(events, evLoad(isa.T1, addr, trace.SegData))
			}
		}
		ds := &DeathSchedule{byIndex: make(map[uint64][]uint32)}
		lastAccess := make(map[uint32]uint64)
		for idx := range events {
			e := &events[idx]
			info := e.Ins.Op.Info()
			lo, hi := wordRange(e.MemAddr, e.MemSize)
			for w := lo; w <= hi; w++ {
				if info.IsStore {
					if death, live := lastAccess[w]; live {
						ds.byIndex[death] = append(ds.byIndex[death], w)
						ds.values++
					}
				}
				lastAccess[w] = uint64(idx)
			}
		}
		for w, death := range lastAccess {
			ds.byIndex[death] = append(ds.byIndex[death], w)
			ds.values++
		}
		// Deaths = overwritten values + final values = total stores...
		// except stores never followed by another access still count,
		// which the final flush covers. Loads of untouched words add a
		// pre-existing value that also dies.
		preexisting := 0
		seenStore := map[uint32]bool{}
		for idx := range events {
			e := &events[idx]
			info := e.Ins.Op.Info()
			lo, _ := wordRange(e.MemAddr, e.MemSize)
			if info.IsLoad && !seenStore[lo] {
				preexisting++
				seenStore[lo] = true // only the first pre-store load creates it
			}
			if info.IsStore {
				seenStore[lo] = true
			}
		}
		return int(ds.Values()) == stores+preexisting
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(43))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
