package core

import (
	"errors"

	"paragraph/internal/budget"
	"paragraph/internal/stats"
)

// Shard support: the placement state of a dependency analysis (live well,
// window, predictor, scalars) must flow through shards serially via
// checkpoint handoff, but the statistics the analysis accumulates —
// parallelism and storage profiles, lifetime and sharing distributions,
// governor accounting — are write-only and order-independent, so each shard
// can report just its own contribution and a merger can reassemble the
// whole-trace totals exactly. BeginShard zeroes those accumulators at a
// shard boundary; ShardStats harvests the shard's contribution.

// ShardStats is one shard's contribution to the mergeable statistics of an
// analysis. Histogram and distribution fields use the exported State forms,
// which gob round-trips exactly, so shard results can cross process and
// machine boundaries without drift.
type ShardStats struct {
	// Profile and Storage are nil when the corresponding collection is
	// disabled in the config.
	Profile  *stats.LevelHistogramState
	Storage  *stats.LevelHistogramState
	Lifetime stats.LogDistState
	Sharing  stats.LogDistState
	// Governor is nil when no memory budget is configured.
	Governor *budget.GovernorStats
}

// BeginShard marks a shard boundary: it resets the mergeable accumulators
// so the next ShardStats call reports only this shard's contribution.
// Placement state (well, window, predictor, governor policy and effective
// window) is untouched — that state must flow through shards serially, via
// Snapshot/Restore. Call it before replaying each shard's events, including
// the first.
func (a *Analyzer) BeginShard() error {
	if a.finished {
		return errors.New("core: BeginShard after Finish")
	}
	if a.deaths != nil {
		return errors.New("core: sharded analysis is single-pass; a death schedule needs whole-trace knowledge")
	}
	if a.profile != nil {
		a.profile = stats.NewLevelHistogram(a.cfg.ProfileBuckets)
	}
	if a.storage != nil {
		a.storage = stats.NewLevelHistogram(a.cfg.ProfileBuckets)
	}
	a.lifetimes = stats.LogDist{}
	a.sharing = stats.LogDist{}
	if a.gov != nil {
		// Govern never reads its accumulated stats, so resetting them is
		// behaviorally transparent; the merger sums counters and maxes
		// peaks back into whole-run totals.
		a.gov.RestoreStats(budget.GovernorStats{})
	}
	return nil
}

// ShardStats harvests the accumulators since the last BeginShard. For the
// final shard, call it after Finish so end-of-trace retirements (still-live
// values folded into the lifetime/sharing distributions) are included.
func (a *Analyzer) ShardStats() ShardStats {
	st := ShardStats{Lifetime: a.lifetimes.State(), Sharing: a.sharing.State()}
	if a.profile != nil {
		s := a.profile.State()
		st.Profile = &s
	}
	if a.storage != nil {
		s := a.storage.State()
		st.Storage = &s
	}
	if a.gov != nil {
		s := a.gov.Stats()
		st.Governor = &s
	}
	return st
}
