package core

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"paragraph/internal/budget"
	"paragraph/internal/faultinject"
	"paragraph/internal/trace"
)

// governedEvents is enough events past several budget.CheckEvery boundaries
// for the governor to observe a growing live well.
const governedEvents = 8192

func TestBudgetFailFast(t *testing.T) {
	cfg := Dataflow(SyscallConservative)
	cfg.MemBudget = 1 // one byte: the register file alone exceeds it
	cfg.BudgetPolicy = budget.FailFast
	a := NewAnalyzer(cfg)
	events := genTraceEvents(governedEvents)
	var err error
	for i := range events {
		if err = a.Event(&events[i]); err != nil {
			break
		}
	}
	if !errors.Is(err, budget.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *budget.Error
	if !errors.As(err, &be) {
		t.Fatalf("err = %T, want *budget.Error", err)
	}
	if be.LimitBytes != 1 || be.UsageBytes <= 1 {
		t.Errorf("error reports usage %d / limit %d", be.UsageBytes, be.LimitBytes)
	}
	if !contains(err.Error(), "core: event") {
		t.Errorf("err = %q, want the event position in the message", err)
	}
}

func TestBudgetDegradeTightensWindow(t *testing.T) {
	// Enough CheckEvery boundaries to walk an unlimited window all the way
	// down: DegradeStartWindow then ten halvings to the floor, with checks
	// to spare that must then count as warnings.
	events := genTraceEvents(20_000)
	cfg := Dataflow(SyscallConservative)
	cfg.Profile = false
	cfg.MemBudget = 1
	cfg.BudgetPolicy = budget.Degrade
	a := NewAnalyzer(cfg)
	for i := range events {
		if err := a.Event(&events[i]); err != nil {
			t.Fatalf("degrade-mode event %d: %v", i, err)
		}
	}
	res, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Governor == nil {
		t.Fatal("governed run has no GovernorStats")
	}
	st := *res.Governor
	if !st.Governed() || st.Degradations == 0 {
		t.Fatalf("stats = %+v, want recorded degradations", st)
	}
	if st.Checks == 0 || st.PeakBytes == 0 || st.PeakLiveWellBytes == 0 {
		t.Errorf("stats = %+v, want non-zero accounting", st)
	}
	// An impossible budget degrades all the way to the floor, after which
	// overages are only counted.
	if st.EffectiveWindow != budget.MinWindow {
		t.Errorf("EffectiveWindow = %d, want the %d floor", st.EffectiveWindow, budget.MinWindow)
	}
	if st.Warnings == 0 {
		t.Errorf("stats = %+v, want at-floor overages counted as warnings", st)
	}
}

func TestBudgetWarnOnlyDoesNotIntervene(t *testing.T) {
	events := genTraceEvents(governedEvents)
	base := Dataflow(SyscallConservative)

	plain := NewAnalyzer(base)
	feed(t, plain, events, 0, len(events))
	want, err := plain.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if want.Governor != nil {
		t.Fatalf("ungoverned run has GovernorStats %+v", want.Governor)
	}

	cfg := base
	cfg.MemBudget = 1
	cfg.BudgetPolicy = budget.WarnOnly
	warned := NewAnalyzer(cfg)
	feed(t, warned, events, 0, len(events))
	got, err := warned.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got.Governor == nil || got.Governor.Warnings == 0 {
		t.Fatalf("stats = %+v, want counted warnings", got.Governor)
	}
	// Metrics must be untouched: warn-only governance observes, never acts.
	// Only the accounting and the budget knobs echoed in Config may differ.
	got.Governor = nil
	got.Config.MemBudget = 0
	got.Config.BudgetPolicy = budget.FailFast
	if !reflect.DeepEqual(got, want) {
		t.Errorf("warn-only results differ from ungoverned run\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestFaultInjectedTightBudgetDegrade combines the two degradation paths: a
// trace with an injected corrupt chunk, read in degraded mode, analyzed
// under a hopeless memory budget with the Degrade policy. The run must
// complete, skip exactly the damaged chunk, and report accurate governor
// accounting.
func TestFaultInjectedTightBudgetDegrade(t *testing.T) {
	events := genTraceEvents(20_000)
	data := encodeV2(t, events, 2048)
	chunks, err := trace.ScanChunks(data)
	if err != nil {
		t.Fatal(err)
	}
	target := len(chunks) / 2
	bad, err := faultinject.CorruptChunk(data, target, 29)
	if err != nil {
		t.Fatal(err)
	}

	cfg := Dataflow(SyscallConservative)
	cfg.Profile = false
	cfg.MemBudget = 1
	cfg.BudgetPolicy = budget.Degrade
	var rst trace.ReadStats
	res, err := AnalyzeTwoPassOpts(context.Background(), bytes.NewReader(bad), cfg,
		TwoPassOptions{Degraded: true, Stats: &rst})
	if err != nil {
		t.Fatalf("degraded fault-injected run failed: %v", err)
	}
	if rst.SkippedChunks != 1 {
		t.Errorf("read stats = %+v, want exactly the corrupt chunk skipped", rst)
	}
	lost := uint64(chunks[target].Events)
	if res.Instructions != uint64(len(events))-lost {
		t.Errorf("Instructions = %d, want %d", res.Instructions, uint64(len(events))-lost)
	}
	st := res.Governor
	if st == nil || !st.Governed() || st.Degradations == 0 {
		t.Fatalf("governor stats = %+v, want recorded degradations", st)
	}
	if st.EffectiveWindow != budget.MinWindow || st.Warnings == 0 {
		t.Errorf("stats = %+v, want window at the %d floor with overages counted", st, budget.MinWindow)
	}
	if st.PeakBytes < st.PeakLiveWellBytes || st.PeakLiveWellBytes == 0 {
		t.Errorf("stats = %+v, want consistent non-zero peaks", st)
	}
	// Checks happen once per CheckEvery surviving events across both
	// passes' analysis loop (the discovery pass is ungoverned).
	if want := res.Instructions / budget.CheckEvery; st.Checks != want {
		t.Errorf("Checks = %d, want %d (one per %d analyzed events)", st.Checks, want, budget.CheckEvery)
	}
}

// TestPersistedCheckpointResume is the crash-recovery acceptance test: an
// analysis killed mid-trace, restarted from its last on-disk autosave,
// reproduces the uninterrupted run's results exactly — including the death
// schedule, which is not persisted and must be recomputed by a discovery
// pass on resume.
func TestPersistedCheckpointResume(t *testing.T) {
	events := genTraceEvents(3000)
	data := encodeV2(t, events, 1024)
	configs := map[string]Config{
		"dataflow": Dataflow(SyscallConservative),
		"windowed": {Syscalls: SyscallConservative, RenameRegisters: true, RenameStack: true,
			WindowSize: 64, FunctionalUnits: 4, Branches: BranchTwoBit},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			want, err := AnalyzeTwoPass(bytes.NewReader(data), cfg)
			if err != nil {
				t.Fatal(err)
			}

			// Autosave to disk, then die at the second checkpoint.
			path := filepath.Join(t.TempDir(), "autosave.ckpt")
			killed := errors.New("simulated crash")
			opts := TwoPassOptions{CheckpointEvery: 512}
			opts.OnCheckpoint = func(cp *Checkpoint) error {
				if err := SaveCheckpoint(path, cp); err != nil {
					return err
				}
				if cp.EventOffset >= 1024 {
					return killed
				}
				return nil
			}
			if _, err := AnalyzeTwoPassOpts(context.Background(), bytes.NewReader(data), cfg, opts); !errors.Is(err, killed) {
				t.Fatalf("interrupted run gave %v", err)
			}

			// A new process loads the file and resumes.
			cp, err := LoadCheckpoint(path)
			if err != nil {
				t.Fatal(err)
			}
			if cp.EventOffset != 1024 {
				t.Fatalf("loaded checkpoint at %d, want 1024", cp.EventOffset)
			}
			got, err := ResumeTwoPass(context.Background(), bytes.NewReader(data), cp, TwoPassOptions{})
			if err != nil {
				t.Fatalf("resume failed: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("resumed result differs from uninterrupted run\ngot:  %+v\nwant: %+v", got, want)
			}
		})
	}
}

// TestResumeAfterCancellation covers the interaction the two features were
// built for: a run cancelled mid-workload (Ctrl-C) leaves its last autosave
// behind, and resuming from it under a fresh context deep-equals the
// uninterrupted run.
func TestResumeAfterCancellation(t *testing.T) {
	events := genTraceEvents(4000)
	data := encodeV2(t, events, 1024)
	cfg := Config{Syscalls: SyscallConservative, RenameRegisters: true, RenameStack: true,
		WindowSize: 128, Branches: BranchTwoBit}

	want, err := AnalyzeTwoPass(bytes.NewReader(data), cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	path := filepath.Join(t.TempDir(), "autosave.ckpt")
	opts := TwoPassOptions{CheckpointEvery: 1000}
	opts.OnCheckpoint = func(cp *Checkpoint) error {
		if err := SaveCheckpoint(path, cp); err != nil {
			return err
		}
		if cp.EventOffset >= 2000 {
			cancel() // the user hits Ctrl-C mid-analysis
		}
		return nil
	}
	_, err = AnalyzeTwoPassOpts(ctx, bytes.NewReader(data), cfg, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run gave %v, want context.Canceled in the chain", err)
	}
	if !contains(err.Error(), "canceled at event") {
		t.Errorf("err = %q, want the cancellation position", err)
	}

	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ResumeTwoPass(context.Background(), bytes.NewReader(data), cp, TwoPassOptions{})
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed result differs from uninterrupted run\ngot:  %+v\nwant: %+v", got, want)
	}
}

func TestDiscoveryCancellation(t *testing.T) {
	events := genTraceEvents(4000)
	data := encodeV2(t, events, 1024)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	_, err = ComputeDeathScheduleContext(ctx, tr)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !contains(err.Error(), "discovery canceled") {
		t.Errorf("err = %q, want it to name the discovery pass", err)
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	events := genTraceEvents(1500)
	a := NewAnalyzer(Dataflow(SyscallConservative))
	feed(t, a, events, 0, 1000)
	path := filepath.Join(t.TempDir(), "cp")
	if err := SaveCheckpoint(path, a.Snapshot()); err != nil {
		t.Fatal(err)
	}

	// Truncation and header damage must fail loudly, not decode garbage.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("truncated checkpoint decoded")
	}
	mangled := append([]byte(nil), raw...)
	mangled[3] ^= 0xFF
	if _, err := ReadCheckpoint(bytes.NewReader(mangled)); err == nil {
		t.Error("checkpoint with a damaged header decoded")
	}
}
