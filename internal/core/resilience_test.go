package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"paragraph/internal/faultinject"
	"paragraph/internal/isa"
	"paragraph/internal/trace"
)

// genTraceEvents produces n valid events with enough memory traffic (stack
// and data, reads and overwrites) for death schedules and renaming to have
// work to do.
func genTraceEvents(n int) []trace.Event {
	rng := rand.New(rand.NewSource(13))
	out := make([]trace.Event, 0, n)
	pc := uint32(0x400000)
	for i := 0; i < n; i++ {
		var e trace.Event
		switch rng.Intn(5) {
		case 0:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.ADDI,
				Rt: isa.IntReg(8 + rng.Intn(8)), Rs: isa.IntReg(8 + rng.Intn(8)), Imm: int32(i)}}
		case 1:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.LW, Rt: isa.T2, Rs: isa.SP, Imm: 4},
				MemAddr: 0x7fff0000 + uint32(rng.Intn(32))*4, MemSize: 4, Seg: trace.SegStack}
		case 2:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.SW, Rt: isa.T3, Rs: isa.SP, Imm: 8},
				MemAddr: 0x7fff0100 + uint32(rng.Intn(32))*4, MemSize: 4, Seg: trace.SegStack}
		case 3:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.SW, Rt: isa.T4, Rs: isa.GP},
				MemAddr: 0x10000000 + uint32(rng.Intn(32))*4, MemSize: 4, Seg: trace.SegData}
		default:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.BNE, Rs: isa.T0, Rt: isa.Zero, Imm: -16},
				Taken: rng.Intn(3) == 0}
		}
		out = append(out, e)
		if rng.Intn(8) == 0 {
			pc = 0x400000 + uint32(rng.Intn(1<<14))&^3
		} else {
			pc += 4
		}
	}
	return out
}

// encodeV2 serializes events as a v2 trace with small chunks.
func encodeV2(t *testing.T, events []trace.Event, chunkBytes int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriterOpts(&buf, trace.WriterOptions{Version: 2, ChunkBytes: chunkBytes})
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if err := w.Event(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestValidateEventRejections(t *testing.T) {
	cases := []struct {
		name   string
		event  trace.Event
		reason string // substring of the expected Reason
	}{
		{"unknown opcode",
			trace.Event{PC: 0x400000, Ins: isa.Instruction{Op: 0xFF}},
			"unknown opcode"},
		{"zero-size memory op",
			trace.Event{PC: 0x400000, Ins: isa.Instruction{Op: isa.LW, Rt: isa.T0, Rs: isa.SP},
				MemAddr: 0x7fff0000, Seg: trace.SegStack},
			"zero access size"},
		{"memory access on ALU op",
			trace.Event{PC: 0x400000, Ins: isa.Instruction{Op: isa.ADD, Rd: isa.T0},
				MemAddr: 0x1000, MemSize: 4, Seg: trace.SegData},
			"carries a memory access"},
		{"no segment",
			trace.Event{PC: 0x400000, Ins: isa.Instruction{Op: isa.LW, Rt: isa.T0, Rs: isa.SP},
				MemAddr: 0x7fff0000, MemSize: 4},
			"no segment"},
		{"stack tag below stack floor",
			trace.Event{PC: 0x400000, Ins: isa.Instruction{Op: isa.LW, Rt: isa.T0, Rs: isa.SP},
				MemAddr: 0x1000, MemSize: 4, Seg: trace.SegStack},
			"inconsistent with address"},
		{"data tag above stack floor",
			trace.Event{PC: 0x400000, Ins: isa.Instruction{Op: isa.SW, Rt: isa.T0, Rs: isa.GP},
				MemAddr: 0x7fff0000, MemSize: 4, Seg: trace.SegData},
			"inconsistent with address"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewAnalyzer(Dataflow(SyscallConservative))
			// One good event first, so the index below is non-trivial.
			good := trace.Event{PC: 0x400000, Ins: isa.Instruction{Op: isa.ADDI, Rt: isa.T0, Rs: isa.T1, Imm: 1}}
			if err := a.Event(&good); err != nil {
				t.Fatal(err)
			}
			err := a.Event(&tc.event)
			if !errors.Is(err, ErrBadEvent) {
				t.Fatalf("err = %v, want ErrBadEvent", err)
			}
			var bad *BadEventError
			if !errors.As(err, &bad) {
				t.Fatalf("err = %T, want *BadEventError", err)
			}
			if bad.Index != 1 {
				t.Errorf("Index = %d, want 1", bad.Index)
			}
			if bad.PC != tc.event.PC {
				t.Errorf("PC = %#x, want %#x", bad.PC, tc.event.PC)
			}
			if !contains(bad.Reason, tc.reason) {
				t.Errorf("Reason = %q, want it to mention %q", bad.Reason, tc.reason)
			}
			// A rejected event must not have advanced the analysis.
			res, ferr := a.Finish()
			if ferr != nil {
				t.Fatal(ferr)
			}
			if res.Instructions != 1 {
				t.Errorf("rejected event was counted: Instructions = %d", res.Instructions)
			}
		})
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

// TestMangledEventsRejected closes the loop with the fault injector: every
// mangling it can produce must be caught by validation.
func TestMangledEventsRejected(t *testing.T) {
	a := NewAnalyzer(Dataflow(SyscallConservative))
	inj := faultinject.NewSink(a, faultinject.SinkOptions{Seed: 3, MangleP: 1})
	events := genTraceEvents(200)
	rejected := 0
	for i := range events {
		if err := inj.Event(&events[i]); err != nil {
			if !errors.Is(err, ErrBadEvent) {
				t.Fatalf("event %d: %v, want ErrBadEvent", i, err)
			}
			rejected++
		}
	}
	if inj.Mangled != len(events) {
		t.Fatalf("injector mangled %d of %d", inj.Mangled, len(events))
	}
	if rejected != len(events) {
		t.Errorf("validation rejected %d of %d mangled events", rejected, len(events))
	}
}

func TestFinishLifecycleErrors(t *testing.T) {
	a := NewAnalyzer(Config{})
	e := trace.Event{PC: 4, Ins: isa.Instruction{Op: isa.NOP}}
	if err := a.Event(&e); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := a.Event(&e); err == nil {
		t.Error("Event after Finish succeeded")
	}
	if _, err := a.Finish(); err == nil {
		t.Error("second Finish succeeded")
	}
}

// feed pushes events[lo:hi] into a, failing the test on error.
func feed(t *testing.T, a *Analyzer, events []trace.Event, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		if err := a.Event(&events[i]); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
}

// assertSameResult compares the metrics a resumed run must reproduce.
func assertSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Instructions != want.Instructions {
		t.Errorf("%s: Instructions = %d, want %d", label, got.Instructions, want.Instructions)
	}
	if got.Operations != want.Operations {
		t.Errorf("%s: Operations = %d, want %d", label, got.Operations, want.Operations)
	}
	if got.CriticalPath != want.CriticalPath {
		t.Errorf("%s: CriticalPath = %d, want %d", label, got.CriticalPath, want.CriticalPath)
	}
	if got.Available != want.Available {
		t.Errorf("%s: Available = %g, want %g", label, got.Available, want.Available)
	}
	if got.MaxLiveMemoryWords != want.MaxLiveMemoryWords {
		t.Errorf("%s: MaxLiveMemoryWords = %d, want %d", label, got.MaxLiveMemoryWords, want.MaxLiveMemoryWords)
	}
	if got.Branches != want.Branches || got.Mispredictions != want.Mispredictions {
		t.Errorf("%s: branches %d/%d, want %d/%d", label,
			got.Mispredictions, got.Branches, want.Mispredictions, want.Branches)
	}
}

func TestCheckpointResumeEquivalence(t *testing.T) {
	events := genTraceEvents(3000)
	configs := map[string]Config{
		"dataflow": Dataflow(SyscallConservative),
		"windowed": {Syscalls: SyscallConservative, RenameRegisters: true, RenameStack: true,
			WindowSize: 64, FunctionalUnits: 4, Branches: BranchTwoBit},
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			full := NewAnalyzer(cfg)
			feed(t, full, events, 0, len(events))
			want, err := full.Finish()
			if err != nil {
				t.Fatal(err)
			}

			split := len(events) / 3
			live := NewAnalyzer(cfg)
			feed(t, live, events, 0, split)
			cp := live.Snapshot()
			if cp.EventOffset != uint64(split) {
				t.Fatalf("EventOffset = %d, want %d", cp.EventOffset, split)
			}

			// The snapshotted analyzer keeps running to the end...
			feed(t, live, events, split, len(events))
			liveRes, err := live.Finish()
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, "snapshotted analyzer", liveRes, want)

			// ...and the restored one, fed the remainder, matches too —
			// even though the original kept mutating after the snapshot.
			resumed := cp.Restore()
			feed(t, resumed, events, split, len(events))
			resumedRes, err := resumed.Finish()
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, "restored analyzer", resumedRes, want)

			// Restore is repeatable: a second restoration works as well.
			resumed2 := cp.Restore()
			feed(t, resumed2, events, split, len(events))
			res2, err := resumed2.Finish()
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, "second restoration", res2, want)
		})
	}
}

func TestTwoPassDegradedOverCorruptChunk(t *testing.T) {
	events := genTraceEvents(4000)
	data := encodeV2(t, events, 512)
	chunks, err := trace.ScanChunks(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 4 {
		t.Fatalf("need several chunks, got %d", len(chunks))
	}
	target := len(chunks) / 2
	bad, err := faultinject.CorruptChunk(data, target, 17)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Dataflow(SyscallConservative)
	cfg.Profile = false

	// Fail-fast: the corrupt chunk aborts the run with a structured error.
	_, err = AnalyzeTwoPassOpts(context.Background(), bytes.NewReader(bad), cfg, TwoPassOptions{})
	var cce *trace.CorruptChunkError
	if !errors.As(err, &cce) {
		t.Fatalf("fail-fast run gave %v, want *CorruptChunkError", err)
	}
	if cce.Chunk != target {
		t.Errorf("failed chunk = %d, want %d", cce.Chunk, target)
	}

	// Degraded: the run completes, losing exactly the corrupt chunk.
	var st trace.ReadStats
	res, err := AnalyzeTwoPassOpts(context.Background(), bytes.NewReader(bad), cfg, TwoPassOptions{Degraded: true, Stats: &st})
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	lost := uint64(chunks[target].Events)
	if st.SkippedEvents != lost || st.SkippedChunks != 1 {
		t.Errorf("stats = %+v, want 1 skipped chunk of %d events", st, lost)
	}
	if res.Instructions != uint64(len(events))-lost {
		t.Errorf("Instructions = %d, want %d (total minus the lost chunk)",
			res.Instructions, uint64(len(events))-lost)
	}
}

func TestTwoPassCheckpointResume(t *testing.T) {
	events := genTraceEvents(3000)
	data := encodeV2(t, events, 1024)
	cfg := Dataflow(SyscallConservative)
	cfg.Profile = false

	want, err := AnalyzeTwoPass(bytes.NewReader(data), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupt the pass at its second checkpoint, as a crash would.
	interrupted := errors.New("simulated interruption")
	var last *Checkpoint
	opts := TwoPassOptions{CheckpointEvery: 512}
	opts.OnCheckpoint = func(cp *Checkpoint) error {
		last = cp
		if cp.EventOffset >= 1024 {
			return interrupted
		}
		return nil
	}
	_, err = AnalyzeTwoPassOpts(context.Background(), bytes.NewReader(data), cfg, opts)
	if !errors.Is(err, interrupted) {
		t.Fatalf("interrupted run gave %v", err)
	}
	if last == nil || last.EventOffset != 1024 {
		t.Fatalf("last checkpoint at %+v, want offset 1024", last)
	}

	res, err := ResumeTwoPass(context.Background(), bytes.NewReader(data), last, TwoPassOptions{})
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	assertSameResult(t, "resumed two-pass", res, want)

	// Resuming past the end of the trace is a clear error, not a hang.
	tooFar := &Checkpoint{EventOffset: uint64(len(events)) + 1, a: last.a}
	if _, err := ResumeTwoPass(context.Background(), bytes.NewReader(data), tooFar, TwoPassOptions{}); err == nil {
		t.Error("resume beyond trace end succeeded")
	}
}

func TestCheckpointEveryErrorPosition(t *testing.T) {
	// The checkpoint callback's error is wrapped with the trace position.
	events := genTraceEvents(600)
	data := encodeV2(t, events, 1024)
	cfg := Config{Syscalls: SyscallConservative}
	boom := errors.New("checkpoint store full")
	_, err := AnalyzeTwoPassOpts(context.Background(), bytes.NewReader(data), cfg, TwoPassOptions{
		CheckpointEvery: 500,
		OnCheckpoint:    func(*Checkpoint) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the callback's error", err)
	}
	if want := fmt.Sprintf("checkpoint at event %d", 500); !contains(err.Error(), want) {
		t.Errorf("err = %q, want it to mention %q", err, want)
	}
}
