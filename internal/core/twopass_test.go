package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"reflect"
	"testing"

	"paragraph/internal/isa"
	"paragraph/internal/trace"
)

// storeTrace serializes hand-built events into the binary format with
// synthetic ascending PCs.
func storeTrace(t *testing.T, events []trace.Event) *bytes.Reader {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pc := uint32(0x400000)
	for i := range events {
		e := events[i]
		e.PC = pc
		pc += 4
		if err := w.Event(&e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf.Bytes())
}

// sweepTrace writes and reloads n distinct memory words, then repeats; the
// one-pass live well holds all n words, the two-pass one a constant few.
func sweepTrace(n, rounds int) []trace.Event {
	var events []trace.Event
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			addr := uint32(0x10000000 + 4*i)
			events = append(events, evAddi(isa.T0, isa.Zero, int32(i)))
			events = append(events, evStore(isa.T0, addr, trace.SegData))
			events = append(events, evLoad(isa.T1, addr, trace.SegData))
		}
	}
	return events
}

func TestComputeDeathSchedule(t *testing.T) {
	events := []trace.Event{
		evAddi(isa.T0, isa.Zero, 1),
		evStore(isa.T0, 0x10000000, trace.SegData), // idx 1: creates value A
		evLoad(isa.T1, 0x10000000, trace.SegData),  // idx 2: last read of A
		evStore(isa.T0, 0x10000000, trace.SegData), // idx 3: overwrites -> A died at idx 2
		evStore(isa.T0, 0x10000004, trace.SegData), // idx 4: never reused -> no death entry
	}
	rd := storeTrace(t, events)
	r, err := trace.NewReader(rd)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ComputeDeathSchedule(r)
	if err != nil {
		t.Fatal(err)
	}
	// Three deaths: value A (overwritten, last read idx 2), the value
	// that overwrote it (never accessed again, dies at its store idx 3),
	// and the idx-4 store's value (dies at its own creation).
	if ds.Values() != 3 {
		t.Errorf("deaths = %d, want 3", ds.Values())
	}
	if got := ds.at(2); len(got) != 1 || got[0] != 0x10000000>>2 {
		t.Errorf("death at idx 2 = %v", got)
	}
	if got := ds.at(3); len(got) != 1 || got[0] != 0x10000000>>2 {
		t.Errorf("death at idx 3 = %v", got)
	}
	if got := ds.at(4); len(got) != 1 || got[0] != 0x10000004>>2 {
		t.Errorf("death at idx 4 = %v", got)
	}
}

// TestTwoPassMatchesOnePass: metrics identical, footprint smaller.
func TestTwoPassMatchesOnePass(t *testing.T) {
	events := sweepTrace(64, 4)
	rd := storeTrace(t, events)

	cfg := Dataflow(SyscallConservative)
	cfg.Lifetimes = true
	cfg.Sharing = true

	two, err := AnalyzeTwoPass(rd, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := rd.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.NewReader(rd)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(cfg)
	if err := tr.ForEach(a.Event); err != nil {
		t.Fatal(err)
	}
	one := a.MustFinish()

	if one.CriticalPath != two.CriticalPath || one.Operations != two.Operations ||
		one.Available != two.Available || one.Syscalls != two.Syscalls {
		t.Errorf("metrics differ: one-pass %v, two-pass %v", one, two)
	}
	if one.Lifetimes.Count() != two.Lifetimes.Count() ||
		one.Lifetimes.Mean() != two.Lifetimes.Mean() {
		t.Errorf("lifetime stats differ: %v vs %v", one.Lifetimes.String(), two.Lifetimes.String())
	}
	if one.Sharing.Count() != two.Sharing.Count() {
		t.Errorf("sharing counts differ: %d vs %d", one.Sharing.Count(), two.Sharing.Count())
	}
	// The whole point: the two-pass live well stays small.
	if one.MaxLiveMemoryWords < 64 {
		t.Fatalf("one-pass footprint = %d, expected >= 64", one.MaxLiveMemoryWords)
	}
	if two.MaxLiveMemoryWords > one.MaxLiveMemoryWords/8 {
		t.Errorf("two-pass footprint %d not much smaller than one-pass %d",
			two.MaxLiveMemoryWords, one.MaxLiveMemoryWords)
	}
}

// TestTwoPassKeepsNonRenamedValues: without data renaming, entries must
// survive their last read (the next write still consults lastUse), and the
// analysis must still agree with one-pass.
func TestTwoPassKeepsNonRenamedValues(t *testing.T) {
	events := sweepTrace(16, 3)
	rd := storeTrace(t, events)
	cfg := Config{Syscalls: SyscallConservative, RenameRegisters: true} // stack+data kept
	two, err := AnalyzeTwoPass(rd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	tr, _ := trace.NewReader(rd)
	a := NewAnalyzer(cfg)
	if err := tr.ForEach(a.Event); err != nil {
		t.Fatal(err)
	}
	one := a.MustFinish()
	if one.CriticalPath != two.CriticalPath || one.Available != two.Available {
		t.Errorf("non-renamed metrics differ: %v vs %v", one, two)
	}
	if two.MaxLiveMemoryWords != one.MaxLiveMemoryWords {
		t.Errorf("non-renamed footprints differ: %d vs %d (nothing should be evicted)",
			two.MaxLiveMemoryWords, one.MaxLiveMemoryWords)
	}
}

func TestUseDeathScheduleTooLate(t *testing.T) {
	a := NewAnalyzer(Dataflow(SyscallConservative))
	e := evAddi(isa.T0, isa.Zero, 1)
	if err := a.Event(&e); err != nil {
		t.Fatal(err)
	}
	if err := a.UseDeathSchedule(&DeathSchedule{}); err == nil {
		t.Error("UseDeathSchedule accepted mid-analysis")
	}
}

// TestStorageProfile: the occupancy curve tracks the live well.
func TestStorageProfile(t *testing.T) {
	events := sweepTrace(32, 1)
	cfg := Dataflow(SyscallConservative)
	cfg.StorageProfile = true
	r := analyze(t, cfg, events)
	if len(r.StorageProfile) == 0 {
		t.Fatal("no storage profile")
	}
	last := r.StorageProfile[len(r.StorageProfile)-1]
	if last.Ops < 30 {
		t.Errorf("final occupancy %.1f, want ~32 live words", last.Ops)
	}
	// Occupancy must be nondecreasing for a pure write-sweep.
	var prev float64
	for _, p := range r.StorageProfile {
		if p.Ops < prev-1e-9 {
			t.Errorf("occupancy dipped at %d: %v -> %v", p.Level, prev, p.Ops)
		}
		prev = p.Ops
	}
}

// TestStorageProfileWithEviction: under the two-pass regime the curve stays
// flat instead of growing.
func TestStorageProfileWithEviction(t *testing.T) {
	events := sweepTrace(64, 2)
	rd := storeTrace(t, events)
	cfg := Dataflow(SyscallConservative)
	cfg.StorageProfile = true
	r, err := AnalyzeTwoPass(rd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var peak float64
	for _, p := range r.StorageProfile {
		if p.Ops > peak {
			peak = p.Ops
		}
	}
	if peak > 8 {
		t.Errorf("evicted occupancy peak %.1f, want small", peak)
	}
}

// cancelAfter is a ReadSeeker that fires cancel once cumulative bytes read
// cross a threshold — a deterministic stand-in for a signal arriving while
// the analysis pass is mid-trace.
type cancelAfter struct {
	rs        io.ReadSeeker
	threshold int64
	read      int64
	cancel    context.CancelFunc
}

func (c *cancelAfter) Read(p []byte) (int, error) {
	n, err := c.rs.Read(p)
	c.read += int64(n)
	if c.read >= c.threshold && c.cancel != nil {
		c.cancel()
		c.cancel = nil
	}
	return n, err
}

func (c *cancelAfter) Seek(offset int64, whence int) (int64, error) {
	return c.rs.Seek(offset, whence)
}

// TestFinalCheckpointOnCancel: with FinalOnCancel set, a pass that observes
// cancellation flushes one last snapshot through OnCheckpoint — even when no
// periodic checkpoint ever fired — and resuming from it reproduces the
// uninterrupted result exactly.
func TestFinalCheckpointOnCancel(t *testing.T) {
	events := sweepTrace(256, 40) // ~30k events: many read batches
	rd := storeTrace(t, events)

	cfg := Dataflow(SyscallConservative)
	cfg.Lifetimes = true

	want, err := AnalyzeTraceOpts(context.Background(), rd, cfg, TwoPassOptions{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cr := &cancelAfter{rs: rd, threshold: rd.Size() / 2, cancel: cancel}
	var final *Checkpoint
	var flushes int
	_, err = AnalyzeTraceOpts(ctx, cr, cfg, TwoPassOptions{
		CheckpointEvery: 1 << 30, // periodic checkpoints never fire
		OnCheckpoint: func(cp *Checkpoint) error {
			final = cp
			flushes++
			return nil
		},
		FinalOnCancel: true,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if flushes != 1 || final == nil {
		t.Fatalf("OnCheckpoint fired %d times, want exactly the final flush", flushes)
	}
	if final.EventOffset == 0 || final.EventOffset >= uint64(len(events)) {
		t.Fatalf("final checkpoint at event %d of %d: not mid-trace", final.EventOffset, len(events))
	}

	got, err := ResumeTwoPass(context.Background(), rd, final, TwoPassOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed result differs from uninterrupted run:\n got %+v\nwant %+v", got, want)
	}

	// Without FinalOnCancel the same interruption saves nothing.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	cr2 := &cancelAfter{rs: rd, threshold: rd.Size() / 2, cancel: cancel2}
	flushes = 0
	_, err = AnalyzeTraceOpts(ctx2, cr2, cfg, TwoPassOptions{
		CheckpointEvery: 1 << 30,
		OnCheckpoint:    func(*Checkpoint) error { flushes++; return nil },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if flushes != 0 {
		t.Errorf("OnCheckpoint fired %d times without FinalOnCancel, want 0", flushes)
	}
}
