package core

import (
	"errors"
	"fmt"

	"paragraph/internal/isa"
	"paragraph/internal/trace"
)

// Speculative sharding: the placement rule is inherently sequential — every
// level depends on the live well left by all preceding events — so PR 4's
// sharding chained shard i+1's analyzer on shard i's exit checkpoint and the
// analyzer remained the wall. The observation that breaks the chain is that
// almost everything *except* the levels is entry-state independent: which
// storage locations an event touches, in which roles (source, destination,
// storage-dependency check), with what latency class, and whether the event
// is placed at all are functions of the event stream and the configuration
// alone. A speculative pass over one shard can therefore run with no entry
// live-well at all, resolving every location it touches to a dense
// shard-local slot id (the pending-read table: slot 0 is the first location
// the shard touches, and its entry state is unknown until splice time) and
// compiling the shard into a flat stream of slot-addressed op records — a
// ShardDelta. The sequential fix-up (Analyzer.ApplyDelta) then splices a
// delta onto the real entry state: it materializes each slot from the
// predecessor's exit live-well, replays the record stream maintaining all
// level-dependent state (floor, window, functional units, predictor,
// governor, statistics) with pure array indexing instead of hashing and
// dispatch, and writes the touched slots back. The result is exact by
// construction — ApplyDelta performs the same placements in the same order
// as Analyzer.Event would — so speculative N-shard analysis is deep-equal
// to the monolithic run, which the differential battery enforces.
//
// The record stream encodes one record per trace event:
//
//	word0: kind(3) | taken(1<<3) | immNeg(1<<4) | isStore(1<<5) |
//	       op(8)<<8 | nsrc(8)<<16 | ndst(8)<<24
//	branch records:  word0, pc, src slots
//	place records:   word0, src slots, dest slots
//	jump records:    word0, dest slot
//	skip/syscall:    word0 only
//
// Source words are plain slot ids. Destination words carry the
// deltaStorageTerm bit when storage dependencies apply to that location
// under the build config (register renaming / per-segment memory renaming
// resolved at build time). Every event emits a record — even NOPs — because
// window displacement, the storage profile and the governor cadence are
// per-event.
const (
	deltaKindSkip    = 0 // NOP, optimistic syscall, perfect-policy branch, destless jump
	deltaKindPlace   = 1 // ordinary placement (ALU, FP, load, store)
	deltaKindJump    = 2 // jump binding a return-address constant
	deltaKindBranch  = 3 // conditional branch under an imperfect predictor
	deltaKindSyscall = 4 // conservative syscall firewall

	deltaFlagTaken   = 1 << 3
	deltaFlagImmNeg  = 1 << 4
	deltaFlagIsStore = 1 << 5

	// deltaMemLoc marks a memory-word location key in ShardDelta.Locs
	// (word addresses are byte addresses >> 2, so they fit in 30 bits).
	deltaMemLoc = uint32(1) << 31
	// deltaStorageTerm marks a destination slot whose previous value's
	// lastUse feeds the placement rule's Ddest+1 term.
	deltaStorageTerm = uint32(1) << 31
)

// BuildSig captures the configuration switches that are compiled into a
// ShardDelta's record stream. ApplyDelta refuses a delta whose signature
// does not match the analyzer's config: the stream would encode the wrong
// dispatch decisions. Latencies, window size, functional units, profiles
// and budgets are deliberately absent — they are applied at splice time
// from the analyzer's own config, so governor-driven window changes that
// cross a shard seam need no rebuild.
type BuildSig struct {
	Syscalls        SyscallPolicy
	Branches        BranchPolicy
	RenameRegisters bool
	RenameStack     bool
	RenameData      bool
}

func buildSig(cfg *Config) BuildSig {
	return BuildSig{
		Syscalls:        cfg.Syscalls,
		Branches:        cfg.Branches,
		RenameRegisters: cfg.RenameRegisters,
		RenameStack:     cfg.RenameStack,
		RenameData:      cfg.RenameData,
	}
}

// ShardDelta is the relocatable output of a speculative pass over one
// shard's events: levels and liveness are expressed relative to the shard's
// unknown entry state, so the delta can be built with no predecessor and
// spliced onto any analyzer positioned at StartEvent. All fields are
// exported and gob-encode, so deltas cross process and machine boundaries
// like shard results do.
type ShardDelta struct {
	// Sig records the build-relevant configuration switches.
	Sig BuildSig
	// StartEvent is the absolute trace position of the first event;
	// validation errors during the build already carry absolute indices.
	StartEvent uint64
	// Events is the number of events compiled into Code.
	Events uint64
	// Locs is the pending-read table: slot id -> location key, in
	// first-touch order. Register keys are the register number; memory
	// keys are the word address with the deltaMemLoc bit set. Which of
	// these locations hold live values at shard entry — and at what
	// levels — is unknown until splice time.
	Locs []uint32
	// Code is the flat record stream described above.
	Code []uint32
	// ClassCounts and Syscalls are the shard's entry-state-independent
	// scalar contributions, folded in when the delta is applied.
	ClassCounts [16]uint64
	Syscalls    uint64
}

// slotTable maps memory word addresses to dense slot ids during a build:
// open addressing with Fibonacci hashing and linear probing, mirroring the
// live well's memTable but with 8-byte entries and no deletion.
type slotTable struct {
	keys []uint32
	ids  []int32 // -1 = empty
	n    int
	mask uint32
}

func newSlotTable() *slotTable {
	const initSize = 1024
	t := &slotTable{
		keys: make([]uint32, initSize),
		ids:  make([]int32, initSize),
		mask: initSize - 1,
	}
	for i := range t.ids {
		t.ids[i] = -1
	}
	return t
}

func slotHash(w, mask uint32) uint32 {
	return (w * 2654435769) & mask
}

// lookup returns the slot id for word, or -1.
func (t *slotTable) lookup(w uint32) int32 {
	for i := slotHash(w, t.mask); ; i = (i + 1) & t.mask {
		if t.ids[i] < 0 {
			return -1
		}
		if t.keys[i] == w {
			return t.ids[i]
		}
	}
}

// insert adds a word known to be absent.
func (t *slotTable) insert(w uint32, id int32) {
	if t.n >= len(t.ids)*3/4 {
		t.grow()
	}
	i := slotHash(w, t.mask)
	for t.ids[i] >= 0 {
		i = (i + 1) & t.mask
	}
	t.keys[i], t.ids[i] = w, id
	t.n++
}

func (t *slotTable) grow() {
	oldKeys, oldIDs := t.keys, t.ids
	size := len(oldIDs) * 2
	t.keys = make([]uint32, size)
	t.ids = make([]int32, size)
	t.mask = uint32(size - 1)
	for i := range t.ids {
		t.ids[i] = -1
	}
	for i, id := range oldIDs {
		if id < 0 {
			continue
		}
		w := oldKeys[i]
		j := slotHash(w, t.mask)
		for t.ids[j] >= 0 {
			j = (j + 1) & t.mask
		}
		t.keys[j], t.ids[j] = w, id
	}
}

// DeltaBuilder is the speculative pass: it implements trace.Sink and
// trace.BatchSink, validating events exactly as the analyzer does (with
// absolute indices, so errors match a chained run's) and compiling them
// into a ShardDelta. It holds no levels and no entry state, so any number
// of builders can run concurrently over different shards of one trace.
//
// On a validation error the builder keeps the records for every event
// before the bad one; Delta still returns that prefix, which the
// speculative driver applies before reporting the error so failures
// surface in the same order a chained run reports them.
type DeltaBuilder struct {
	cfg Config
	d   *ShardDelta

	regSlot [isa.NumRegs]int32
	memSlot *slotTable

	srcBuf []isa.Reg
}

// NewDeltaBuilder starts a speculative pass for a shard whose first event
// sits at absolute trace position startEvent.
func NewDeltaBuilder(cfg Config, startEvent uint64) *DeltaBuilder {
	b := &DeltaBuilder{
		cfg: cfg.Clone(),
		d: &ShardDelta{
			Sig:        buildSig(&cfg),
			StartEvent: startEvent,
		},
		memSlot: newSlotTable(),
	}
	for i := range b.regSlot {
		b.regSlot[i] = -1
	}
	return b
}

// Grow pre-sizes the record array for n more events. Roughly four code
// words cover the common event (word0, two source slots, a destination);
// denser events just append past the hint. Shard drivers know the event
// count from the plan, and one up-front allocation keeps append from
// copying a multi-hundred-MB array through growslice as the shard builds.
func (b *DeltaBuilder) Grow(n int) {
	need := len(b.d.Code) + 4*n
	if need <= cap(b.d.Code) {
		return
	}
	grown := make([]uint32, len(b.d.Code), need)
	copy(grown, b.d.Code)
	b.d.Code = grown
}

// regSlotID resolves a register to its slot, allocating on first touch.
func (b *DeltaBuilder) regSlotID(r isa.Reg) uint32 {
	if id := b.regSlot[r]; id >= 0 {
		return uint32(id)
	}
	id := int32(len(b.d.Locs))
	b.regSlot[r] = id
	b.d.Locs = append(b.d.Locs, uint32(r))
	return uint32(id)
}

// memSlotID resolves a memory word to its slot, allocating on first touch.
func (b *DeltaBuilder) memSlotID(w uint32) uint32 {
	if id := b.memSlot.lookup(w); id >= 0 {
		return uint32(id)
	}
	id := int32(len(b.d.Locs))
	b.memSlot.insert(w, id)
	b.d.Locs = append(b.d.Locs, w|deltaMemLoc)
	return uint32(id)
}

// Event implements trace.Sink.
func (b *DeltaBuilder) Event(e *trace.Event) error {
	return b.build(e)
}

// Events implements trace.BatchSink.
func (b *DeltaBuilder) Events(batch []trace.Event) error {
	for i := range batch {
		if err := b.build(&batch[i]); err != nil {
			return err
		}
	}
	return nil
}

// build compiles one event into the record stream. The dispatch mirrors
// Analyzer.event; the slot references are emitted in exactly the order the
// analyzer touches the corresponding live-well locations, so ApplyDelta's
// replay is operation-for-operation identical.
func (b *DeltaBuilder) build(e *trace.Event) error {
	seq := b.d.StartEvent + b.d.Events
	if verr := validateEvent(e, seq); verr != nil {
		return verr
	}
	d := b.d
	d.Events++

	op := e.Ins.Op
	info := op.Info()
	d.ClassCounts[info.Class]++

	w0 := uint32(deltaKindSkip) | uint32(op)<<8
	switch {
	case op == isa.NOP:
		d.Code = append(d.Code, w0)
		return nil
	case e.IsSyscall():
		d.Syscalls++
		if b.cfg.Syscalls == SyscallOptimistic {
			d.Code = append(d.Code, w0)
			return nil
		}
		d.Code = append(d.Code, w0|deltaKindSyscall)
		return nil
	case info.IsJump:
		if dst, ok := e.Ins.Dest(); ok {
			// bindConstant does not skip $zero, so neither does the
			// record: the binding is observable through retirement
			// statistics.
			d.Code = append(d.Code, w0|deltaKindJump|1<<24, b.regSlotID(dst))
		} else {
			d.Code = append(d.Code, w0)
		}
		return nil
	case info.IsBranch:
		if b.cfg.Branches == BranchPerfect {
			d.Code = append(d.Code, w0)
			return nil
		}
		// Whether the branch mispredicts can depend on predictor state
		// flowing across the shard seam, so the record carries
		// everything the splice needs to decide: outcome, direction
		// sign, PC and the source slots that set the resolution level.
		w0 |= deltaKindBranch
		if e.Taken {
			w0 |= deltaFlagTaken
		}
		if e.Ins.Imm < 0 {
			w0 |= deltaFlagImmNeg
		}
		b.srcBuf = e.Ins.SourceRegs(b.srcBuf[:0])
		nsrc := uint32(0)
		at := len(d.Code)
		d.Code = append(d.Code, 0, e.PC)
		for _, r := range b.srcBuf {
			if r == isa.Zero {
				continue
			}
			d.Code = append(d.Code, b.regSlotID(r))
			nsrc++
		}
		d.Code[at] = w0 | nsrc<<16
		return nil
	}

	// Ordinary placement. Source and destination slots are emitted in
	// live-well touch order: registers before memory words, memory words
	// lo..hi. nsrc and ndst fit a byte: at most 3 register sources and —
	// MemSize being a byte — at most 65 words per access.
	w0 |= deltaKindPlace
	at := len(d.Code)
	d.Code = append(d.Code, 0)

	b.srcBuf = e.Ins.SourceRegs(b.srcBuf[:0])
	nsrc := uint32(0)
	for _, r := range b.srcBuf {
		if r == isa.Zero {
			continue
		}
		d.Code = append(d.Code, b.regSlotID(r))
		nsrc++
	}
	if info.IsLoad {
		lo, hi := wordRange(e.MemAddr, e.MemSize)
		for w := lo; w <= hi; w++ {
			d.Code = append(d.Code, b.memSlotID(w))
			nsrc++
		}
	}

	ndst := uint32(0)
	regTerm := uint32(0)
	if !b.cfg.RenameRegisters {
		regTerm = deltaStorageTerm
	}
	var dbuf [2]isa.Reg
	for _, dst := range regDests(&e.Ins, dbuf[:0]) {
		if dst == isa.Zero {
			continue
		}
		d.Code = append(d.Code, b.regSlotID(dst)|regTerm)
		ndst++
	}
	if info.IsStore {
		w0 |= deltaFlagIsStore
		memTerm := uint32(deltaStorageTerm)
		if e.Seg == trace.SegStack && b.cfg.RenameStack ||
			e.Seg != trace.SegStack && b.cfg.RenameData {
			memTerm = 0
		}
		lo, hi := wordRange(e.MemAddr, e.MemSize)
		for w := lo; w <= hi; w++ {
			d.Code = append(d.Code, b.memSlotID(w)|memTerm)
			ndst++
		}
	}
	d.Code[at] = w0 | nsrc<<16 | ndst<<24
	return nil
}

// Delta finalizes the build and returns the delta. After a build error it
// returns the prefix covering every event before the failing one.
func (b *DeltaBuilder) Delta() *ShardDelta {
	return b.d
}

// deltaSlot is the splice-time state of one pending location: the value
// record, its liveness, and whether the location is a memory word (which
// drives live-memory accounting).
type deltaSlot struct {
	val   value
	live  bool
	isMem bool
}

// ApplyDelta splices a speculative shard delta onto the analyzer: slots are
// materialized from the current live well, the record stream is replayed
// maintaining every level-dependent structure exactly as Analyzer.Event
// would, and the touched locations are written back. The analyzer must be
// positioned at the delta's StartEvent (i.e. it has consumed exactly the
// preceding events, via earlier shards or deltas).
//
// After a successful splice the analyzer's observable state — and every
// Result derived from it — is identical to having fed the shard's events
// through Event. (The live well's internal hash layout may differ, since
// written-back slots land in first-touch order rather than event order;
// that is invisible to placement, statistics and checkpoints.)
func (a *Analyzer) ApplyDelta(d *ShardDelta) (err error) {
	if a.finished {
		return errors.New("core: Event after Finish")
	}
	if a.deaths != nil {
		return errors.New("core: speculative splice is single-pass; a death schedule needs whole-trace knowledge")
	}
	if got := buildSig(&a.cfg); got != d.Sig {
		return fmt.Errorf("core: delta was built for config %+v, analyzer has %+v", d.Sig, got)
	}
	if a.instructions != d.StartEvent {
		return fmt.Errorf("core: delta starts at event %d, analyzer is at event %d", d.StartEvent, a.instructions)
	}
	defer func() {
		if v := recover(); v != nil {
			ev := a.instructions
			if ev > d.StartEvent {
				ev-- // the panic came from the record being replayed
			}
			err = &AnalysisError{Event: ev, Stage: "event", Cause: recoveredError(v)}
		}
	}()

	// Materialize the pending-read table against the real entry state.
	slots := make([]deltaSlot, len(d.Locs))
	for i, loc := range d.Locs {
		if loc&deltaMemLoc != 0 {
			v, live := a.well.memGet(loc &^ deltaMemLoc)
			slots[i] = deltaSlot{val: v, live: live, isMem: true}
		} else {
			slots[i] = deltaSlot{val: a.well.regs[loc], live: a.well.regLive[loc]}
		}
	}

	var rp deltaReplay
	rp.init(a)
	rp.slots = slots
	rp.curMem = a.well.memLen()
	if rerr := rp.run(d.Code); rerr != nil {
		return rerr
	}

	// Write back the touched locations. Slots that stayed dead (a branch
	// source whose branch never mispredicted) were never touched by the
	// replay and must not become live.
	for i := range slots {
		sl := &slots[i]
		if !sl.live {
			continue
		}
		if loc := d.Locs[i]; sl.isMem {
			a.well.memPut(loc&^deltaMemLoc, sl.val)
		} else {
			a.well.regs[loc] = sl.val
			a.well.regLive[loc] = true
		}
	}
	a.syscalls += d.Syscalls
	for c, n := range d.ClassCounts {
		a.classCounts[c] += n
	}
	return nil
}

// Concat appends next's records to d, remapping next's pending slots
// through d's touched-location table, and returns the combined delta:
// applying it is equivalent to applying d then next. Concatenation is
// associative — slot ids follow global first-touch order, so either
// grouping produces a structurally identical delta — which the
// testing/quick battery pins.
func (d *ShardDelta) Concat(next *ShardDelta) (*ShardDelta, error) {
	if d.Sig != next.Sig {
		return nil, fmt.Errorf("shard deltas built under different configs: %+v vs %+v", d.Sig, next.Sig)
	}
	if got := d.StartEvent + d.Events; next.StartEvent != got {
		return nil, fmt.Errorf("shard delta starts at event %d, predecessor ends at %d", next.StartEvent, got)
	}
	out := &ShardDelta{
		Sig:        d.Sig,
		StartEvent: d.StartEvent,
		Events:     d.Events + next.Events,
		Locs:       append(append([]uint32(nil), d.Locs...), make([]uint32, 0, len(next.Locs))...),
		Code:       append(append([]uint32(nil), d.Code...), make([]uint32, 0, len(next.Code))...),
		Syscalls:   d.Syscalls + next.Syscalls,
	}
	for c := range out.ClassCounts {
		out.ClassCounts[c] = d.ClassCounts[c] + next.ClassCounts[c]
	}

	index := make(map[uint32]uint32, len(d.Locs))
	for id, loc := range d.Locs {
		index[loc] = uint32(id)
	}
	remap := make([]uint32, len(next.Locs))
	for id, loc := range next.Locs {
		if prev, ok := index[loc]; ok {
			remap[id] = prev
			continue
		}
		remap[id] = uint32(len(out.Locs))
		index[loc] = remap[id]
		out.Locs = append(out.Locs, loc)
	}

	code := next.Code
	for i := 0; i < len(code); {
		w0 := code[i]
		i++
		out.Code = append(out.Code, w0)
		switch w0 & 7 {
		case deltaKindSkip, deltaKindSyscall:
		case deltaKindPlace:
			nsrc := int((w0 >> 16) & 0xff)
			ndst := int(w0 >> 24)
			if i+nsrc+ndst > len(code) {
				return nil, fmt.Errorf("shard delta: truncated record at word %d", i-1)
			}
			for _, s := range code[i : i+nsrc] {
				out.Code = append(out.Code, remap[s])
			}
			for _, dw := range code[i+nsrc : i+nsrc+ndst] {
				out.Code = append(out.Code, remap[dw&^deltaStorageTerm]|dw&deltaStorageTerm)
			}
			i += nsrc + ndst
		case deltaKindJump:
			if w0>>24 != 0 {
				if i >= len(code) {
					return nil, fmt.Errorf("shard delta: truncated record at word %d", i-1)
				}
				out.Code = append(out.Code, remap[code[i]])
				i++
			}
		case deltaKindBranch:
			nsrc := int((w0 >> 16) & 0xff)
			if i+1+nsrc > len(code) {
				return nil, fmt.Errorf("shard delta: truncated record at word %d", i-1)
			}
			out.Code = append(out.Code, code[i])
			for _, s := range code[i+1 : i+1+nsrc] {
				out.Code = append(out.Code, remap[s])
			}
			i += 1 + nsrc
		default:
			return nil, fmt.Errorf("shard delta: unknown record kind %d at word %d", w0&7, i-1)
		}
	}
	return out, nil
}
