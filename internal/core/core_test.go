package core

import (
	"math/rand"
	"testing"

	"paragraph/internal/isa"
	"paragraph/internal/trace"
)

// Event constructors for hand-built traces.

func evLoad(rt isa.Reg, addr uint32, seg trace.Segment) trace.Event {
	return trace.Event{
		Ins:     isa.Instruction{Op: isa.LW, Rt: rt, Rs: isa.GP},
		MemAddr: addr, MemSize: 4, Seg: seg,
	}
}

func evStore(rt isa.Reg, addr uint32, seg trace.Segment) trace.Event {
	return trace.Event{
		Ins:     isa.Instruction{Op: isa.SW, Rt: rt, Rs: isa.GP},
		MemAddr: addr, MemSize: 4, Seg: seg,
	}
}

func evAdd(rd, rs, rt isa.Reg) trace.Event {
	return trace.Event{Ins: isa.Instruction{Op: isa.ADD, Rd: rd, Rs: rs, Rt: rt}}
}

func evAddi(rt, rs isa.Reg, imm int32) trace.Event {
	return trace.Event{Ins: isa.Instruction{Op: isa.ADDI, Rt: rt, Rs: rs, Imm: imm}}
}

func evSyscall() trace.Event {
	return trace.Event{Ins: isa.Instruction{Op: isa.SYSCALL}}
}

func analyze(t *testing.T, cfg Config, events []trace.Event) *Result {
	t.Helper()
	a := NewAnalyzer(cfg)
	for i := range events {
		if err := a.Event(&events[i]); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	return a.MustFinish()
}

// profileOps extracts the per-level op counts, requiring bucket width 1.
func profileOps(t *testing.T, r *Result) []float64 {
	t.Helper()
	if r.ProfileBucketWidth != 1 {
		t.Fatalf("profile bucket width = %d, want 1", r.ProfileBucketWidth)
	}
	out := make([]float64, len(r.Profile))
	for i, p := range r.Profile {
		out[i] = p.Ops
	}
	return out
}

// figure1Trace is the paper's Figure 1 example: S := A+B+C+D evaluated as
// (A+B)+(C+D) with distinct registers.
func figure1Trace() []trace.Event {
	const A, B, C, D, S = 0x10000000, 0x10000004, 0x10000008, 0x1000000c, 0x10000010
	return []trace.Event{
		evLoad(isa.T0, A, trace.SegData),
		evLoad(isa.T1, B, trace.SegData),
		evAdd(isa.T4, isa.T0, isa.T1),
		evLoad(isa.T2, C, trace.SegData),
		evLoad(isa.T3, D, trace.SegData),
		evAdd(isa.T5, isa.T2, isa.T3),
		evAdd(isa.T6, isa.T4, isa.T5),
		evStore(isa.T6, S, trace.SegData),
	}
}

// figure2Trace reuses registers t0/t1 for C and D, creating the storage
// dependencies of the paper's Figure 2.
func figure2Trace() []trace.Event {
	const A, B, C, D, S = 0x10000000, 0x10000004, 0x10000008, 0x1000000c, 0x10000010
	return []trace.Event{
		evLoad(isa.T0, A, trace.SegData),
		evLoad(isa.T1, B, trace.SegData),
		evAdd(isa.T4, isa.T0, isa.T1),
		evLoad(isa.T0, C, trace.SegData),
		evLoad(isa.T1, D, trace.SegData),
		evAdd(isa.T5, isa.T0, isa.T1),
		evAdd(isa.T6, isa.T4, isa.T5),
		evStore(isa.T6, S, trace.SegData),
	}
}

// TestFigure1 reproduces the paper's Figure 1: with full renaming the DDG
// has critical path 4 and parallelism profile [4, 2, 1, 1].
func TestFigure1(t *testing.T) {
	cfg := Dataflow(SyscallConservative)
	r := analyze(t, cfg, figure1Trace())
	if r.CriticalPath != 4 {
		t.Errorf("critical path = %d, want 4", r.CriticalPath)
	}
	if r.Operations != 8 {
		t.Errorf("ops = %d, want 8", r.Operations)
	}
	if got, want := profileOps(t, r), []float64{4, 2, 1, 1}; !equalF(got, want) {
		t.Errorf("profile = %v, want %v", got, want)
	}
	if r.Available != 2.0 {
		t.Errorf("available = %v, want 2", r.Available)
	}
}

// TestFigure2 reproduces the paper's Figure 2: with register storage
// dependencies kept, the same computation has critical path 6 and profile
// [2, 1, 2, 1, 1, 1].
func TestFigure2(t *testing.T) {
	cfg := Dataflow(SyscallConservative)
	cfg.RenameRegisters = false
	r := analyze(t, cfg, figure2Trace())
	if r.CriticalPath != 6 {
		t.Errorf("critical path = %d, want 6", r.CriticalPath)
	}
	if got, want := profileOps(t, r), []float64{2, 1, 2, 1, 1, 1}; !equalF(got, want) {
		t.Errorf("profile = %v, want %v", got, want)
	}
}

// TestFigure2WithRenaming checks that renaming restores the Figure 1 graph
// even when registers are reused.
func TestFigure2WithRenaming(t *testing.T) {
	r := analyze(t, Dataflow(SyscallConservative), figure2Trace())
	if r.CriticalPath != 4 {
		t.Errorf("critical path = %d, want 4", r.CriticalPath)
	}
	if got, want := profileOps(t, r), []float64{4, 2, 1, 1}; !equalF(got, want) {
		t.Errorf("profile = %v, want %v", got, want)
	}
}

func equalF(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestNoDependencyPlacedAtTop: an instruction with no dependencies is
// placed in the topologically highest level even late in the trace.
func TestNoDependencyPlacedAtTop(t *testing.T) {
	events := []trace.Event{
		evAddi(isa.T0, isa.Zero, 1),
		evAddi(isa.T0, isa.T0, 1),
		evAddi(isa.T0, isa.T0, 1),
		evAddi(isa.T1, isa.Zero, 9), // independent: should land at level 0
	}
	r := analyze(t, Dataflow(SyscallConservative), events)
	ops := profileOps(t, r)
	if ops[0] != 2 {
		t.Errorf("level 0 has %v ops, want 2 (chain head + independent li)", ops[0])
	}
	if r.CriticalPath != 3 {
		t.Errorf("critical path = %d, want 3", r.CriticalPath)
	}
}

// TestTrueDependencyChain: N dependent unit-latency ops have critical path
// N and available parallelism 1.
func TestTrueDependencyChain(t *testing.T) {
	var events []trace.Event
	for i := 0; i < 50; i++ {
		events = append(events, evAddi(isa.T0, isa.T0, 1))
	}
	r := analyze(t, Dataflow(SyscallConservative), events)
	if r.CriticalPath != 50 {
		t.Errorf("critical path = %d, want 50", r.CriticalPath)
	}
	if r.Available != 1.0 {
		t.Errorf("available = %v, want 1", r.Available)
	}
}

// TestIndependentOps: N independent ops all land in level 0.
func TestIndependentOps(t *testing.T) {
	var events []trace.Event
	for i := 0; i < 40; i++ {
		events = append(events, evAddi(isa.IntReg(8+i%16), isa.Zero, int32(i)))
	}
	r := analyze(t, Dataflow(SyscallConservative), events)
	if r.CriticalPath != 1 {
		t.Errorf("critical path = %d, want 1", r.CriticalPath)
	}
	if r.Available != 40 {
		t.Errorf("available = %v, want 40", r.Available)
	}
}

// TestLatencies: operation times follow Table 1. A dependent chain
// load -> fp add -> fp mul -> fp div spans 1+6+6+12 levels.
func TestLatencies(t *testing.T) {
	f0, f2 := isa.FPReg(0), isa.FPReg(2)
	events := []trace.Event{
		{Ins: isa.Instruction{Op: isa.LDC1, Rt: f0, Rs: isa.GP}, MemAddr: 0x10000000, MemSize: 8, Seg: trace.SegData},
		{Ins: isa.Instruction{Op: isa.ADDD, Rd: f2, Rs: f0, Rt: f0}},
		{Ins: isa.Instruction{Op: isa.MULD, Rd: f2, Rs: f2, Rt: f2}},
		{Ins: isa.Instruction{Op: isa.DIVD, Rd: f2, Rs: f2, Rt: f2}},
	}
	r := analyze(t, Dataflow(SyscallConservative), events)
	if want := int64(1 + 6 + 6 + 12); r.CriticalPath != want {
		t.Errorf("critical path = %d, want %d", r.CriticalPath, want)
	}
	// Unit-latency ablation collapses the chain to 4 levels.
	cfg := Dataflow(SyscallConservative)
	cfg.UnitLatency = true
	r = analyze(t, cfg, events)
	if r.CriticalPath != 4 {
		t.Errorf("unit-latency critical path = %d, want 4", r.CriticalPath)
	}
}

// TestMemoryRAW: a store followed by a load of the same address is a true
// dependency through memory and must serialize regardless of renaming.
func TestMemoryRAW(t *testing.T) {
	events := []trace.Event{
		evAddi(isa.T0, isa.Zero, 7),
		evStore(isa.T0, 0x10000000, trace.SegData),
		evLoad(isa.T1, 0x10000000, trace.SegData),
		evAddi(isa.T2, isa.T1, 1),
	}
	r := analyze(t, Dataflow(SyscallConservative), events)
	if r.CriticalPath != 4 {
		t.Errorf("critical path = %d, want 4 (addi, sw, lw, addi chain)", r.CriticalPath)
	}
}

// TestMemoryWAR: a late load then an early-ready store to the same
// address. With data renaming the store needn't wait; without, it must
// execute after the load has read the old value.
func TestMemoryWAR(t *testing.T) {
	mk := func() []trace.Event {
		return []trace.Event{
			evAddi(isa.T0, isa.Zero, 1), // L0
			evAddi(isa.T0, isa.T0, 1),   // L1
			evAddi(isa.T0, isa.T0, 1),   // L2: address register ready late
			{Ins: isa.Instruction{Op: isa.LW, Rt: isa.T1, Rs: isa.T0},
				MemAddr: 0x10000000, MemSize: 4, Seg: trace.SegData}, // base 2, reads word at level 3
			evAddi(isa.T2, isa.Zero, 5), // L0: store data ready immediately
			evStore(isa.T2, 0x10000000, trace.SegData),
		}
	}
	renamed := analyze(t, Dataflow(SyscallConservative), mk())
	// Store lands at level 1 (its data is ready at 0); path set by the
	// addi chain + load = 4.
	if renamed.CriticalPath != 4 {
		t.Errorf("renamed critical path = %d, want 4", renamed.CriticalPath)
	}
	cfg := Dataflow(SyscallConservative)
	cfg.RenameData = false
	kept := analyze(t, cfg, mk())
	// The load consumes the old word value at base level 2; the store
	// must begin after it (base >= 3), landing at level 4: path 5.
	if kept.CriticalPath != 5 {
		t.Errorf("kept critical path = %d, want 5", kept.CriticalPath)
	}
}

// TestStackVsDataRenaming: the stack switch only affects stack-segment
// addresses.
func TestStackVsDataRenaming(t *testing.T) {
	mk := func(addr uint32, seg trace.Segment) []trace.Event {
		// Two independent computations forced to reuse one memory word.
		return []trace.Event{
			evAddi(isa.T0, isa.Zero, 1),
			evStore(isa.T0, addr, seg),
			evLoad(isa.T1, addr, seg),
			evAddi(isa.T2, isa.Zero, 2),
			evStore(isa.T2, addr, seg),
			evLoad(isa.T3, addr, seg),
		}
	}
	cfg := Dataflow(SyscallConservative)
	cfg.RenameStack = false
	r := analyze(t, cfg, mk(0x7fff0000, trace.SegStack))
	// Without stack renaming: store1 at L1, load1 reads at L2 (base 1),
	// store2 must execute after that read (base >= 2, lands L3), load2
	// at L4 — critical path 5.
	if r.CriticalPath != 5 {
		t.Errorf("stack kept: critical path = %d, want 5", r.CriticalPath)
	}
	r = analyze(t, cfg, mk(0x1000_0000, trace.SegData))
	// Data renaming is still on, so the two chains overlap.
	if r.CriticalPath != 3 {
		t.Errorf("data renamed: critical path = %d, want 3", r.CriticalPath)
	}
}

// TestSyscallFirewall: under the conservative policy a system call forces
// later work below it; under the optimistic policy it is ignored.
func TestSyscallFirewall(t *testing.T) {
	events := []trace.Event{
		evAddi(isa.T0, isa.Zero, 1), // L0
		evAddi(isa.T1, isa.T0, 1),   // L1
		evSyscall(),                 // firewall at L1, call at L2
		evAddi(isa.T2, isa.Zero, 9), // would be L0; forced to L3
	}
	cons := analyze(t, Dataflow(SyscallConservative), events)
	if cons.CriticalPath != 4 {
		t.Errorf("conservative critical path = %d, want 4", cons.CriticalPath)
	}
	if cons.Syscalls != 1 {
		t.Errorf("syscalls = %d", cons.Syscalls)
	}
	opt := analyze(t, Dataflow(SyscallOptimistic), events)
	if opt.CriticalPath != 2 {
		t.Errorf("optimistic critical path = %d, want 2", opt.CriticalPath)
	}
	if opt.Operations != 3 {
		t.Errorf("optimistic ops = %d, want 3 (syscall not placed)", opt.Operations)
	}
}

// TestBranchesExcluded: control instructions are not placed in the DDG.
func TestBranchesExcluded(t *testing.T) {
	events := []trace.Event{
		evAddi(isa.T0, isa.Zero, 1),
		{Ins: isa.Instruction{Op: isa.BNE, Rs: isa.T0, Rt: isa.Zero, Imm: -1}, Taken: true},
		{Ins: isa.Instruction{Op: isa.J, Target: 0x100000}, Taken: true},
		{Ins: isa.Instruction{Op: isa.NOP}},
		evAddi(isa.T1, isa.T0, 1),
	}
	r := analyze(t, Dataflow(SyscallConservative), events)
	if r.Operations != 2 {
		t.Errorf("ops = %d, want 2", r.Operations)
	}
	if r.Instructions != 5 {
		t.Errorf("instructions = %d, want 5", r.Instructions)
	}
}

// TestCallReturnAddress: jal binds $ra as an immediately available value,
// so saving it to the stack does not stall, and reusing it creates no
// false chain.
func TestCallReturnAddress(t *testing.T) {
	events := []trace.Event{
		evAddi(isa.T0, isa.Zero, 1),
		{Ins: isa.Instruction{Op: isa.JAL, Target: 0x100100}, Taken: true},
		evStore(isa.RA, 0x7ffffff0, trace.SegStack), // save ra: level 0
		{Ins: isa.Instruction{Op: isa.JR, Rs: isa.RA}, Taken: true},
	}
	r := analyze(t, Dataflow(SyscallConservative), events)
	if r.CriticalPath != 1 {
		t.Errorf("critical path = %d, want 1 (addi and sw both at level 0)", r.CriticalPath)
	}
	if r.Operations != 2 {
		t.Errorf("ops = %d, want 2", r.Operations)
	}
}

// TestWindowWidthBound: with a window of W, no DDG level can hold more than
// W operations, and fully independent work forms levels of exactly W.
func TestWindowWidthBound(t *testing.T) {
	var events []trace.Event
	for i := 0; i < 12; i++ {
		events = append(events, evAddi(isa.IntReg(8+i%12), isa.Zero, int32(i)))
	}
	cfg := Dataflow(SyscallConservative)
	cfg.WindowSize = 3
	r := analyze(t, cfg, events)
	ops := profileOps(t, r)
	for lvl, n := range ops {
		if n > 3 {
			t.Errorf("level %d holds %v ops > window 3", lvl, n)
		}
	}
	if r.CriticalPath != 4 {
		t.Errorf("critical path = %d, want 4 (12 ops / window 3)", r.CriticalPath)
	}
}

// TestWindowMonotonic: widening the window can only expose more
// parallelism.
func TestWindowMonotonic(t *testing.T) {
	events := randomTrace(rand.New(rand.NewSource(7)), 400)
	var prev float64
	for _, w := range []int{1, 2, 4, 16, 64, 0} {
		cfg := Dataflow(SyscallConservative)
		cfg.Profile = false
		cfg.WindowSize = w
		r := analyze(t, cfg, events)
		if r.Available < prev-1e-9 {
			t.Errorf("window %d: available %v < previous %v", w, r.Available, prev)
		}
		prev = r.Available
	}
}

// TestWindowOneSerializes: a window of 1 forces one operation per level.
func TestWindowOneSerializes(t *testing.T) {
	var events []trace.Event
	for i := 0; i < 20; i++ {
		events = append(events, evAddi(isa.IntReg(8+i%8), isa.Zero, 1))
	}
	cfg := Dataflow(SyscallConservative)
	cfg.WindowSize = 1
	r := analyze(t, cfg, events)
	if r.Available > 1.0+1e-9 {
		t.Errorf("available = %v with window 1, want <= 1", r.Available)
	}
}

// TestFunctionalUnitBound: with F units and unit-latency operations, no
// level completes more than F operations and the critical path is at least
// ops/F.
func TestFunctionalUnitBound(t *testing.T) {
	var events []trace.Event
	for i := 0; i < 30; i++ {
		events = append(events, evAddi(isa.IntReg(8+i%16), isa.Zero, int32(i)))
	}
	cfg := Dataflow(SyscallConservative)
	cfg.FunctionalUnits = 2
	r := analyze(t, cfg, events)
	for lvl, n := range profileOps(t, r) {
		if n > 2 {
			t.Errorf("level %d completes %v ops > 2 FUs", lvl, n)
		}
	}
	if r.CriticalPath < 15 {
		t.Errorf("critical path = %d, want >= 15", r.CriticalPath)
	}
}

// TestFunctionalUnitsLongOps: a long-latency op occupies its unit for its
// whole duration, blocking unit-latency ops meanwhile.
func TestFunctionalUnitsLongOps(t *testing.T) {
	f0 := isa.FPReg(0)
	events := []trace.Event{
		{Ins: isa.Instruction{Op: isa.ADDD, Rd: f0, Rs: f0, Rt: f0}}, // occupies levels 1..6
		evAddi(isa.T0, isa.Zero, 1),
		evAddi(isa.T1, isa.Zero, 1),
	}
	cfg := Dataflow(SyscallConservative)
	cfg.FunctionalUnits = 1
	r := analyze(t, cfg, events)
	// add.d claims levels 1..6 (completes at 6); the addis execute in
	// levels 7 and 8.
	if r.CriticalPath != 8 {
		t.Errorf("critical path = %d, want 8", r.CriticalPath)
	}
}

// TestRenamingMonotonic: on random traces, each renaming level exposes at
// least as much parallelism as the previous.
func TestRenamingMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		events := randomTrace(rng, 300)
		configs := []Config{
			{Syscalls: SyscallConservative},
			{Syscalls: SyscallConservative, RenameRegisters: true},
			{Syscalls: SyscallConservative, RenameRegisters: true, RenameStack: true},
			{Syscalls: SyscallConservative, RenameRegisters: true, RenameStack: true, RenameData: true},
		}
		var prev float64
		for i, cfg := range configs {
			r := analyze(t, cfg, events)
			if r.Available < prev-1e-9 {
				t.Errorf("trial %d config %d: available %v < %v", trial, i, r.Available, prev)
			}
			prev = r.Available
		}
	}
}

// TestProfileMassEqualsOps: the parallelism profile accounts for every
// placed operation.
func TestProfileMassEqualsOps(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	events := randomTrace(rng, 500)
	r := analyze(t, Dataflow(SyscallConservative), events)
	var mass float64
	for i, p := range r.Profile {
		span := r.ProfileBucketWidth
		if i == len(r.Profile)-1 {
			span = r.CriticalPath - 1 - p.Level + 1
			if span <= 0 || span > r.ProfileBucketWidth {
				span = r.ProfileBucketWidth
			}
		}
		mass += p.Ops * float64(span)
	}
	if diff := mass - float64(r.Operations); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("profile mass %v != ops %d", mass, r.Operations)
	}
}

// TestLifetimesAndSharing: a value consumed by three operations records a
// sharing degree of 3 and a lifetime equal to the span from creation to its
// last consumer's base level.
func TestLifetimesAndSharing(t *testing.T) {
	events := []trace.Event{
		evAddi(isa.T0, isa.Zero, 1),   // t0 created, level 0
		evAdd(isa.T1, isa.T0, isa.T0), // use 1+2 (both operands)
		evAdd(isa.T2, isa.T1, isa.T0), // use 3, base 1
		evAddi(isa.T0, isa.Zero, 9),   // overwrite t0 -> retire
	}
	cfg := Dataflow(SyscallConservative)
	cfg.Lifetimes = true
	cfg.Sharing = true
	r := analyze(t, cfg, events)
	if r.Sharing.Count() == 0 {
		t.Fatal("no sharing observations")
	}
	if r.Sharing.Max() != 3 {
		t.Errorf("max sharing = %d, want 3", r.Sharing.Max())
	}
	// t0 was created at level 0 and last read at base level 1.
	if r.Lifetimes.Max() != 1 {
		t.Errorf("max lifetime = %d, want 1", r.Lifetimes.Max())
	}
}

// TestSingleAssignmentInvariant: with full renaming, every operation's
// destination level strictly exceeds its sources' levels — no value is
// available before the values it derives from.
func TestSingleAssignmentInvariant(t *testing.T) {
	// Verified indirectly: a chain through a repeatedly reused location
	// must still be topologically ordered. Reuse one register 50 times
	// with dependencies through memory.
	var events []trace.Event
	for i := 0; i < 50; i++ {
		addr := uint32(0x10000000 + 4*(i%5))
		events = append(events, evLoad(isa.T0, addr, trace.SegData))
		events = append(events, evAddi(isa.T1, isa.T0, 1))
		events = append(events, evStore(isa.T1, addr, trace.SegData))
	}
	r := analyze(t, Dataflow(SyscallConservative), events)
	// Each address chain is serial: load->addi->store repeated 10 times
	// = 30 levels; chains for the 5 addresses run in parallel.
	if r.CriticalPath != 30 {
		t.Errorf("critical path = %d, want 30", r.CriticalPath)
	}
	if got := r.Available; got < 4.9 || got > 5.1 {
		t.Errorf("available = %v, want ~5", got)
	}
}

// TestEventAfterFinish: the analyzer rejects events once finished.
func TestEventAfterFinish(t *testing.T) {
	a := NewAnalyzer(Dataflow(SyscallConservative))
	e := evAddi(isa.T0, isa.Zero, 1)
	if err := a.Event(&e); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := a.Event(&e); err == nil {
		t.Error("Event after Finish succeeded")
	}
	if _, err := a.Finish(); err == nil {
		t.Error("second Finish did not return an error")
	}
}

// TestEmptyTrace: finishing with no events yields zeroes, not panics.
func TestEmptyTrace(t *testing.T) {
	r := NewAnalyzer(Dataflow(SyscallConservative)).MustFinish()
	if r.CriticalPath != 0 || r.Operations != 0 || r.Available != 0 {
		t.Errorf("empty result = %+v", r)
	}
}

// TestSubWordGranularity: byte stores conflict on the containing word (the
// live well tracks memory at word granularity).
func TestSubWordGranularity(t *testing.T) {
	sb := func(rt isa.Reg, addr uint32) trace.Event {
		return trace.Event{
			Ins:     isa.Instruction{Op: isa.SB, Rt: rt, Rs: isa.GP},
			MemAddr: addr, MemSize: 1, Seg: trace.SegData,
		}
	}
	events := []trace.Event{
		evAddi(isa.T0, isa.Zero, 1),
		sb(isa.T0, 0x10000000),
		evLoad(isa.T1, 0x10000000, trace.SegData), // reads the word the byte lives in
		evAddi(isa.T2, isa.T1, 1),
	}
	r := analyze(t, Dataflow(SyscallConservative), events)
	if r.CriticalPath != 4 {
		t.Errorf("critical path = %d, want 4 (byte store feeds word load)", r.CriticalPath)
	}
}

// TestDoubleWordAccess: an 8-byte store creates two word values; loading
// either half depends on it.
func TestDoubleWordAccess(t *testing.T) {
	f0 := isa.FPReg(0)
	events := []trace.Event{
		{Ins: isa.Instruction{Op: isa.ADDD, Rd: f0, Rs: f0, Rt: f0}},
		{Ins: isa.Instruction{Op: isa.SDC1, Rt: f0, Rs: isa.GP}, MemAddr: 0x10000000, MemSize: 8, Seg: trace.SegData},
		evLoad(isa.T0, 0x10000004, trace.SegData), // upper half
		evAddi(isa.T1, isa.T0, 1),
	}
	r := analyze(t, Dataflow(SyscallConservative), events)
	if want := int64(6 + 1 + 1 + 1); r.CriticalPath != want {
		t.Errorf("critical path = %d, want %d", r.CriticalPath, want)
	}
}

// TestMultWritesHIandLO: both halves of a multiply result chain correctly.
func TestMultWritesHIandLO(t *testing.T) {
	events := []trace.Event{
		evAddi(isa.T0, isa.Zero, 3),
		{Ins: isa.Instruction{Op: isa.MULT, Rs: isa.T0, Rt: isa.T0}},
		{Ins: isa.Instruction{Op: isa.MFHI, Rd: isa.T1}},
		{Ins: isa.Instruction{Op: isa.MFLO, Rd: isa.T2}},
	}
	r := analyze(t, Dataflow(SyscallConservative), events)
	// addi(1) -> mult(6) -> mfhi/mflo(1): path = 8.
	if r.CriticalPath != 8 {
		t.Errorf("critical path = %d, want 8", r.CriticalPath)
	}
	ops := profileOps(t, r)
	if ops[len(ops)-1] != 2 {
		t.Errorf("final level = %v ops, want 2 (mfhi + mflo in parallel)", ops[len(ops)-1])
	}
}

// randomTrace generates a plausible mixed trace for property tests:
// register ALU ops, loads and stores over a small address pool, and
// occasional long-latency operations.
func randomTrace(rng *rand.Rand, n int) []trace.Event {
	regs := []isa.Reg{isa.T0, isa.T1, isa.T2, isa.T3, isa.T4, isa.S0, isa.S1, isa.S2}
	addr := func() uint32 { return 0x10000000 + 4*uint32(rng.Intn(16)) }
	stackAddr := func() uint32 { return 0x7fff0000 + 4*uint32(rng.Intn(8)) }
	var events []trace.Event
	for i := 0; i < n; i++ {
		r1 := regs[rng.Intn(len(regs))]
		r2 := regs[rng.Intn(len(regs))]
		r3 := regs[rng.Intn(len(regs))]
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			events = append(events, evAdd(r1, r2, r3))
		case 4, 5:
			events = append(events, evAddi(r1, r2, int32(rng.Intn(100))))
		case 6:
			events = append(events, evLoad(r1, addr(), trace.SegData))
		case 7:
			events = append(events, evStore(r1, addr(), trace.SegData))
		case 8:
			if rng.Intn(2) == 0 {
				events = append(events, evLoad(r1, stackAddr(), trace.SegStack))
			} else {
				events = append(events, evStore(r1, stackAddr(), trace.SegStack))
			}
		case 9:
			events = append(events, trace.Event{Ins: isa.Instruction{Op: isa.MULT, Rs: r2, Rt: r3}})
			events = append(events, trace.Event{Ins: isa.Instruction{Op: isa.MFLO, Rd: r1}})
		}
	}
	return events
}

// TestCriticalPathBounds: on random traces, serial execution bounds the
// critical path above, the longest single latency bounds it below, and
// parallelism is at least 1.
func TestCriticalPathBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		events := randomTrace(rng, 200)
		var serial int64
		for i := range events {
			info := events[i].Ins.Op.Info()
			if info.IsBranch || info.IsJump || events[i].Ins.Op == isa.NOP {
				continue
			}
			serial += int64(events[i].Ins.Op.Latency())
		}
		r := analyze(t, Dataflow(SyscallConservative), events)
		if r.CriticalPath > serial {
			t.Errorf("trial %d: critical path %d > serial bound %d", trial, r.CriticalPath, serial)
		}
		if r.Operations > 0 && r.CriticalPath < 1 {
			t.Errorf("trial %d: empty critical path with %d ops", trial, r.Operations)
		}
		if r.Operations > 0 && r.Available < 1.0-1e-9 {
			t.Errorf("trial %d: available %v < 1", trial, r.Available)
		}
	}
}

// TestWindowedEqualsUnwindowedWhenHuge: a window far larger than the trace
// must give identical results to no window at all.
func TestWindowedEqualsUnwindowedWhenHuge(t *testing.T) {
	events := randomTrace(rand.New(rand.NewSource(19)), 300)
	base := analyze(t, Dataflow(SyscallConservative), events)
	cfg := Dataflow(SyscallConservative)
	cfg.WindowSize = 1 << 20
	windowed := analyze(t, cfg, events)
	if base.CriticalPath != windowed.CriticalPath || base.Available != windowed.Available {
		t.Errorf("huge window differs: %v vs %v", base, windowed)
	}
}

// TestProfileBucketing: a long chain with few profile buckets coarsens
// the bucket width but preserves total mass.
func TestProfileBucketing(t *testing.T) {
	var events []trace.Event
	for i := 0; i < 1000; i++ {
		events = append(events, evAddi(isa.T0, isa.T0, 1))
	}
	cfg := Dataflow(SyscallConservative)
	cfg.ProfileBuckets = 16
	r := analyze(t, cfg, events)
	if r.ProfileBucketWidth < 64 {
		t.Errorf("bucket width = %d, want >= 64", r.ProfileBucketWidth)
	}
	var mass float64
	for i, p := range r.Profile {
		span := r.ProfileBucketWidth
		if i == len(r.Profile)-1 {
			span = (r.CriticalPath - 1) - p.Level + 1 // levels actually used
		}
		mass += p.Ops * float64(span)
	}
	if mass < 999 || mass > 1001 {
		t.Errorf("profile mass = %v, want ~1000", mass)
	}
}

// TestMaxLiveMemoryTracking: storing to N distinct words records a live
// well footprint of at least N.
func TestMaxLiveMemoryTracking(t *testing.T) {
	var events []trace.Event
	for i := 0; i < 32; i++ {
		events = append(events, evStore(isa.T0, uint32(0x10000000+4*i), trace.SegData))
	}
	r := analyze(t, Dataflow(SyscallConservative), events)
	if r.MaxLiveMemoryWords < 32 {
		t.Errorf("max live memory = %d, want >= 32", r.MaxLiveMemoryWords)
	}
}

// TestLatencyOverride: replacing a class's operation time reshapes the
// critical path accordingly (the "changes in operation latencies" parameter
// of the limit studies the paper surveys).
func TestLatencyOverride(t *testing.T) {
	f0, f2 := isa.FPReg(0), isa.FPReg(2)
	events := []trace.Event{
		{Ins: isa.Instruction{Op: isa.ADDD, Rd: f2, Rs: f0, Rt: f0}},
		{Ins: isa.Instruction{Op: isa.MULD, Rd: f2, Rs: f2, Rt: f2}},
	}
	cfg := Dataflow(SyscallConservative)
	r := analyze(t, cfg, events)
	if r.CriticalPath != 12 { // 6 + 6
		t.Fatalf("default critical path = %d, want 12", r.CriticalPath)
	}
	cfg.LatencyOverride = map[isa.OpClass]int{isa.ClassFPMul: 3}
	r = analyze(t, cfg, events)
	if r.CriticalPath != 9 { // 6 + 3
		t.Errorf("overridden critical path = %d, want 9", r.CriticalPath)
	}
	// UnitLatency wins over overrides.
	cfg.UnitLatency = true
	r = analyze(t, cfg, events)
	if r.CriticalPath != 2 {
		t.Errorf("unit-latency critical path = %d, want 2", r.CriticalPath)
	}
	// Non-positive overrides are ignored.
	cfg.UnitLatency = false
	cfg.LatencyOverride = map[isa.OpClass]int{isa.ClassFPMul: 0}
	r = analyze(t, cfg, events)
	if r.CriticalPath != 12 {
		t.Errorf("zero override critical path = %d, want 12", r.CriticalPath)
	}
}
