package core

import (
	"errors"
	"fmt"

	"paragraph/internal/isa"
)

// SchedulerGang replays one resolved record stream for a whole sweep group
// in a single pass. The per-config Scheduler walk repeats work that does
// not depend on the configuration at all — record parsing, slot liveness,
// live-memory counting — once per config, and scatters each config's slot
// levels across its own table, so an 8-config sweep touches eight cache
// lines where one record needs three. The gang hoists the invariant work
// out of the config loop and interleaves every config's (level, lastUse)
// pair per slot, so the per-record inner loop walks a few contiguous
// blocks: slot liveness is a property of the record stream alone (first
// touch is first touch under every config), and so are the operation
// count, live-memory high water mark and — given one branch policy — the
// misprediction sequence.
//
// Eligibility (NewSchedulerGang returns nil otherwise): no lifetime or
// sharing statistics (the gang does not track use counts), no storage
// profile or governor (per-record tail work), and a uniform branch policy
// across the group (misprediction decides slot enlivening, so it must be
// config-invariant for the shared liveness bits to be exact). Window
// sizes, functional units, latencies and parallelism profiles may all
// vary per config. Ineligible groups fall back to per-config Schedulers.
type SchedulerGang struct {
	sch []*Scheduler
	k   int

	// Config-invariant slot state, indexed by dense slot id.
	live  []bool
	isMem []bool
	locs  []uint32

	// state interleaves each slot's per-config pairs: state[slot*2k + 2c]
	// is config c's level, state[slot*2k + 2c + 1] its lastUse. One slot's
	// block is 16k bytes of contiguous memory, walked sequentially by the
	// config loop.
	state []int64

	lat []int64 // lat[op*k + c]: per-config latency tables, interleaved

	// pred is the gang's single predictor: with a uniform policy every
	// config's predictor consumes the same branch stream and stays
	// bit-identical, so one instance decides mispredictions for all and
	// Seal copies its terminal state into each analyzer.
	pred *predictor

	// Per-config scalars.
	hl      []int64
	deepest []int64
	profOn  []bool
	winSize []uint64
	wins    []*windowState
	fu      []*fuSchedule

	// Config-invariant scalars.
	seq     uint64
	ops     uint64
	anyOps  bool
	curMem  int
	maxLive int

	sealed bool
	newlyS []bool // scratch: per-source first-touch flags (general path)
	wawD   []bool // scratch: per-dest WAW-live flags (general path)
}

// NewSchedulerGang builds a gang over freshly created schedulers, or
// returns nil when the group is ineligible and must schedule per config.
func NewSchedulerGang(scheds []*Scheduler) *SchedulerGang {
	if len(scheds) < 2 {
		return nil
	}
	c0 := &scheds[0].a.cfg
	for _, s := range scheds {
		a := s.a
		if a.gov != nil || a.storage != nil || a.cfg.Lifetimes || a.cfg.Sharing {
			return nil
		}
		if a.cfg.Branches != c0.Branches || a.cfg.PredictorBits != c0.PredictorBits {
			return nil
		}
		if a.instructions != 0 || a.finished {
			return nil
		}
	}
	k := len(scheds)
	g := &SchedulerGang{
		sch:     scheds,
		k:       k,
		lat:     make([]int64, 256*k),
		hl:      make([]int64, k),
		deepest: make([]int64, k),
		profOn:  make([]bool, k),
		winSize: make([]uint64, k),
		wins:    make([]*windowState, k),
		fu:      make([]*fuSchedule, k),
	}
	for op := isa.Op(0); op < isa.NumOps; op++ {
		for c, s := range scheds {
			g.lat[int(op)*k+c] = s.a.cfg.latency(op)
		}
	}
	for c, s := range scheds {
		a := s.a
		g.hl[c] = a.highestLevel
		g.deepest[c] = a.deepest
		g.profOn[c] = a.profile != nil
		g.winSize[c] = uint64(a.cfg.WindowSize)
		g.wins[c] = &a.window
		g.fu[c] = a.fu
	}
	if scheds[0].a.pred != nil {
		g.pred = scheds[0].a.pred.clone()
	}
	return g
}

// Apply replays one segment for every config. Segments must arrive in
// emission order; the gang retains nothing from seg after returning.
func (g *SchedulerGang) Apply(seg *DepSegment) (err error) {
	if g.sealed {
		return errors.New("core: gang Apply after Seal")
	}
	start := g.seq
	defer func() {
		if v := recover(); v != nil {
			ev := g.seq
			if ev > start {
				ev--
			}
			err = &AnalysisError{Event: ev, Stage: "event", Cause: recoveredError(v)}
		}
	}()
	for _, loc := range seg.NewLocs {
		g.locs = append(g.locs, loc)
		g.live = append(g.live, false)
		g.isMem = append(g.isMem, loc&deltaMemLoc != 0)
	}
	if need := len(g.live) * 2 * g.k; cap(g.state) < need {
		ns := make([]int64, need, need+need/2)
		copy(ns, g.state)
		g.state = ns
	} else {
		g.state = g.state[:need]
	}
	return g.run(seg.Code)
}

// gangDrain displaces expired window entries for one config, returning the
// (possibly raised) firewall floor. Drains are deferred to floor consumers:
// a record that neither reads the floor nor pushes (a skip, a correctly
// predicted branch) leaves the window untouched, which is exact because the
// displacement cutoff only grows and displacement's sole effect is the
// floor raise observed here.
func gangDrain(w *windowState, rec, ws uint64, hlc int64) int64 {
	if ws == 0 || rec < ws {
		return hlc
	}
	cutoff := rec - ws
	for w.head < w.tail {
		e := &w.buf[w.head&uint64(len(w.buf)-1)]
		if e.seq > cutoff {
			break
		}
		if lv := e.level + 1; lv > hlc {
			hlc = lv
		}
		w.head++
	}
	return hlc
}

// run replays one record stream for all k configs. The structure mirrors
// deltaReplay.run with the per-config work folded into an inner loop; see
// that function for the per-record semantics being reproduced.
func (g *SchedulerGang) run(code []uint32) error {
	k := g.k
	st := g.state
	live := g.live
	isMem := g.isMem
	lat := g.lat
	hl := g.hl
	deepest := g.deepest
	profOn := g.profOn
	winSize := g.winSize
	wins := g.wins
	fu := g.fu
	pred := g.pred

	seq := g.seq
	ops := g.ops
	anyOps := g.anyOps
	curMem := g.curMem
	maxLive := g.maxLive

	for i := 0; i < len(code); {
		w0 := code[i]
		i++
		rec := seq
		seq++
		switch w0 & 7 {
		case deltaKindSkip:
			// Nothing: window drains are deferred (see gangDrain).

		case deltaKindPlace:
			op := int((w0 >> 8) & 0xff)
			nsrc := int((w0 >> 16) & 0xff)
			ndst := int(w0 >> 24)
			latOp := lat[op*k : op*k+k]
			isStore := w0&deltaFlagIsStore != 0
			if nsrc <= 2 && ndst == 1 {
				_ = code[i+nsrc] // one bounds check for the whole record
				var st0, st1 []int64
				var newly0, newly1 bool
				if nsrc > 0 {
					i0 := int(code[i])
					if !live[i0] {
						newly0 = true
						live[i0] = true
						if isMem[i0] {
							curMem++
						}
					}
					st0 = st[i0*2*k : i0*2*k+2*k]
					if nsrc == 2 {
						i1 := int(code[i+1])
						if !live[i1] {
							newly1 = true
							live[i1] = true
							if isMem[i1] {
								curMem++
							}
						}
						st1 = st[i1*2*k : i1*2*k+2*k]
					}
				}
				dw := code[i+nsrc]
				i += nsrc + 1
				di := int(dw &^ deltaStorageTerm)
				waw := dw&deltaStorageTerm != 0 && live[di]
				if !live[di] {
					live[di] = true
					if isMem[di] {
						curMem++
					}
				}
				if isStore && curMem > maxLive {
					maxLive = curMem
				}
				std := st[di*2*k : di*2*k+2*k]
				for c := 0; c < k; c++ {
					hlc := gangDrain(wins[c], rec, winSize[c], hl[c])
					hl[c] = hlc
					pre := hlc - 1
					base := pre
					c2 := 2 * c
					if st0 != nil {
						if newly0 {
							st0[c2] = pre
							st0[c2+1] = pre
						}
						if l := st0[c2]; l > base {
							base = l
						}
						if st1 != nil {
							if newly1 {
								st1[c2] = pre
								st1[c2+1] = pre
							}
							if l := st1[c2]; l > base {
								base = l
							}
						}
					}
					if waw {
						if t := std[c2+1] + 1; t > base {
							base = t
						}
					}
					top := latOp[c]
					if f := fu[c]; f != nil {
						base = f.schedule(base, top)
					}
					ldest := base + top
					if st0 != nil {
						if base > st0[c2+1] {
							st0[c2+1] = base
						}
						if st1 != nil && base > st1[c2+1] {
							st1[c2+1] = base
						}
					}
					std[c2] = ldest
					std[c2+1] = base
					if !anyOps || ldest > deepest[c] {
						deepest[c] = ldest
					}
					if profOn[c] {
						g.sch[c].rp.hist(ldest)
					}
					if winSize[c] > 0 {
						w := wins[c]
						if int(w.tail-w.head) == len(w.buf) {
							w.grow()
						}
						w.buf[w.tail&uint64(len(w.buf)-1)] = winEntry{seq: rec, level: ldest}
						w.tail++
					}
				}
			} else {
				srcs := code[i : i+nsrc]
				dsts := code[i+nsrc : i+nsrc+ndst]
				i += nsrc + ndst
				newlyS := g.newlyS[:0]
				for _, sw := range srcs {
					si := int(sw)
					n := !live[si]
					if n {
						live[si] = true
						if isMem[si] {
							curMem++
						}
					}
					newlyS = append(newlyS, n)
				}
				g.newlyS = newlyS
				// WAW terms see liveness after source enlivening and
				// before destination enlivening, as a sequential pass
				// would.
				wawD := g.wawD[:0]
				for _, dw := range dsts {
					di := int(dw &^ deltaStorageTerm)
					wawD = append(wawD, dw&deltaStorageTerm != 0 && live[di])
				}
				g.wawD = wawD
				for _, dw := range dsts {
					di := int(dw &^ deltaStorageTerm)
					if !live[di] {
						live[di] = true
						if isMem[di] {
							curMem++
						}
					}
				}
				if isStore && curMem > maxLive {
					maxLive = curMem
				}
				for c := 0; c < k; c++ {
					hlc := gangDrain(wins[c], rec, winSize[c], hl[c])
					hl[c] = hlc
					pre := hlc - 1
					base := pre
					c2 := 2 * c
					for j, sw := range srcs {
						si := int(sw)
						l := st[si*2*k+c2]
						if newlyS[j] {
							st[si*2*k+c2] = pre
							st[si*2*k+c2+1] = pre
							l = pre
						}
						if l > base {
							base = l
						}
					}
					for j, dw := range dsts {
						if wawD[j] {
							di := int(dw &^ deltaStorageTerm)
							if t := st[di*2*k+c2+1] + 1; t > base {
								base = t
							}
						}
					}
					top := latOp[c]
					if f := fu[c]; f != nil {
						base = f.schedule(base, top)
					}
					ldest := base + top
					for _, sw := range srcs {
						si := int(sw)
						if base > st[si*2*k+c2+1] {
							st[si*2*k+c2+1] = base
						}
					}
					for _, dw := range dsts {
						di := int(dw &^ deltaStorageTerm)
						st[di*2*k+c2] = ldest
						st[di*2*k+c2+1] = base
					}
					if !anyOps || ldest > deepest[c] {
						deepest[c] = ldest
					}
					if profOn[c] {
						g.sch[c].rp.hist(ldest)
					}
					if winSize[c] > 0 {
						w := wins[c]
						if int(w.tail-w.head) == len(w.buf) {
							w.grow()
						}
						w.buf[w.tail&uint64(len(w.buf)-1)] = winEntry{seq: rec, level: ldest}
						w.tail++
					}
				}
			}
			ops++
			anyOps = true

		case deltaKindJump:
			if w0>>24 != 0 {
				di := int(code[i])
				i++
				live[di] = true
				std := st[di*2*k : di*2*k+2*k]
				for c := 0; c < k; c++ {
					hlc := gangDrain(wins[c], rec, winSize[c], hl[c])
					hl[c] = hlc
					pre := hlc - 1
					std[2*c] = pre
					std[2*c+1] = pre
				}
			}

		case deltaKindBranch:
			nsrc := int((w0 >> 16) & 0xff)
			if pred == nil {
				i += 1 + nsrc
				break
			}
			pc := code[i]
			srcs := code[i+1 : i+1+nsrc]
			i += 1 + nsrc
			if pred.mispredicted(pc, w0&deltaFlagImmNeg != 0, w0&deltaFlagTaken != 0) {
				newlyS := g.newlyS[:0]
				for _, sw := range srcs {
					si := int(sw)
					n := !live[si]
					if n {
						live[si] = true
					}
					newlyS = append(newlyS, n)
				}
				g.newlyS = newlyS
				top := lat[int((w0>>8)&0xff)*k:]
				for c := 0; c < k; c++ {
					hlc := gangDrain(wins[c], rec, winSize[c], hl[c])
					pre := hlc - 1
					base := pre
					c2 := 2 * c
					for j, sw := range srcs {
						si := int(sw)
						l := st[si*2*k+c2]
						if newlyS[j] {
							st[si*2*k+c2] = pre
							st[si*2*k+c2+1] = pre
							l = pre
						}
						if l > base {
							base = l
						}
					}
					if lv := base + top[c] + 1; lv > hlc {
						hlc = lv
					}
					hl[c] = hlc
				}
			}

		case deltaKindSyscall:
			top := lat[int(isa.SYSCALL)*k:]
			for c := 0; c < k; c++ {
				hlc := gangDrain(wins[c], rec, winSize[c], hl[c])
				base := hlc - 1
				if anyOps && deepest[c] > base {
					base = deepest[c]
				}
				ldest := base + top[c]
				if !anyOps || ldest > deepest[c] {
					deepest[c] = ldest
				}
				if profOn[c] {
					g.sch[c].rp.hist(ldest)
				}
				if winSize[c] > 0 {
					wins[c].push(rec, ldest)
				}
				if ldest+1 > hlc {
					hlc = ldest + 1
				}
				hl[c] = hlc
			}
			ops++
			anyOps = true

		default:
			g.seq, g.ops, g.anyOps, g.curMem, g.maxLive = seq, ops, anyOps, curMem, maxLive
			return fmt.Errorf("core: corrupt delta: unknown record kind %d at event %d", w0&7, rec)
		}
	}
	g.seq, g.ops, g.anyOps, g.curMem, g.maxLive = seq, ops, anyOps, curMem, maxLive
	return nil
}

// Seal distributes the gang's terminal state back into every scheduler —
// per-config slot tables, analyzer scalars, predictor state — so each
// Scheduler.Finish observes exactly what a solo replay would have left
// behind. Use counts stay zero: eligibility excludes every consumer of
// them (lifetime and sharing statistics).
func (g *SchedulerGang) Seal() {
	if g.sealed {
		return
	}
	g.sealed = true
	k := g.k
	for c, s := range g.sch {
		a := s.a
		s.locs = g.locs
		slots := make([]deltaSlot, len(g.live))
		for i := range slots {
			slots[i] = deltaSlot{
				val:   value{level: g.state[i*2*k+2*c], lastUse: g.state[i*2*k+2*c+1]},
				live:  g.live[i],
				isMem: g.isMem[i],
			}
		}
		s.rp.slots = slots
		s.rp.flushHist()
		a.instructions = g.seq
		a.highestLevel = g.hl[c]
		a.well.preLevel = g.hl[c] - 1
		a.ops = g.ops
		a.deepest = g.deepest[c]
		a.anyOps = g.anyOps
		a.maxLiveMem = g.maxLive
		if g.pred != nil {
			a.pred = g.pred.clone()
		}
	}
}
