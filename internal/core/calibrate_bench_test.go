package core

import (
	"runtime"
	"testing"

	"paragraph/internal/budget"
)

// BenchmarkLiveWellCalibration measures the real heap cost per live memory
// word against runtime.MemStats, the ground truth behind
// budget.LiveWellEntryBytes. A slot costs 29 B exactly (4 B key + 24 B
// value + 1 B occupancy), so steady-state cost per entry swings with load
// factor: ~38.7 B at maximum load (3/4, just before a doubling) up to
// ~77.3 B at minimum load (3/8, just after one). The budgeted constant is
// the expected cost at a random point of the growth cycle,
// 29/0.375*ln 2 ~= 54 B, rounded up — so the governor is honest on
// average and within 1.4x of the instantaneous truth everywhere outside
// the brief two-table migration window. If either measured metric drifts
// from the comment above (slot layout changed), recalibrate the constant.
//
//	go test ./internal/core -run xxx -bench LiveWellCalibration -benchtime 1x
func BenchmarkLiveWellCalibration(b *testing.B) {
	const maxLoadEntries = (1 << 20) * 3 / 4 // fills a 1<<20 table to its 3/4 threshold

	b.Run("max-load", func(b *testing.B) {
		calibrate(b, maxLoadEntries, 0)
	})
	b.Run("post-grow", func(b *testing.B) {
		// One entry past the threshold doubles the table; the update
		// churn afterwards drains the incremental migration so only the
		// grown, 3/8-loaded table remains.
		calibrate(b, maxLoadEntries+1, 20000)
	})
}

func calibrate(b *testing.B, entries int, churn int) {
	for i := 0; i < b.N; i++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)

		t := &memTable{}
		for k := 0; k < entries; k++ {
			t.put(uint32(k)*4, value{level: int64(k), lastUse: int64(k), uses: 1})
		}
		for k := 0; k < churn; k++ {
			t.put(uint32(k)*4, value{level: int64(k), lastUse: int64(k), uses: 2})
		}

		runtime.GC()
		runtime.ReadMemStats(&after)
		perEntry := float64(after.HeapAlloc-before.HeapAlloc) / float64(entries)
		b.ReportMetric(perEntry, "bytes/entry")
		b.ReportMetric(float64(budget.LiveWellEntryBytes), "budgeted-bytes/entry")
		if t.len() != entries {
			b.Fatalf("table lost entries: %d != %d", t.len(), entries)
		}
		runtime.KeepAlive(t)
	}
}
