package core

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"paragraph/internal/budget"
	"paragraph/internal/isa"
	"paragraph/internal/trace"
)

// richTrace extends randomTrace's mix with the event kinds the speculative
// record stream must encode structurally: conditional branches (predictor
// state and source materialization cross shard seams), calls binding
// return-address constants, syscalls and NOPs.
func richTrace(rng *rand.Rand, n int) []trace.Event {
	regs := []isa.Reg{isa.T0, isa.T1, isa.T2, isa.T3, isa.S0, isa.S1}
	var events []trace.Event
	for len(events) < n {
		r1 := regs[rng.Intn(len(regs))]
		r2 := regs[rng.Intn(len(regs))]
		switch rng.Intn(12) {
		case 0, 1, 2:
			events = append(events, evAdd(r1, r2, regs[rng.Intn(len(regs))]))
		case 3:
			events = append(events, evAddi(r1, r2, int32(rng.Intn(64))))
		case 4:
			events = append(events, evLoad(r1, 0x10000000+4*uint32(rng.Intn(32)), trace.SegData))
		case 5:
			events = append(events, evStore(r1, 0x10000000+4*uint32(rng.Intn(32)), trace.SegData))
		case 6:
			events = append(events, evStore(r1, 0x7fff0000+4*uint32(rng.Intn(8)), trace.SegStack))
		case 7:
			imm := int32(rng.Intn(200) - 100)
			events = append(events, trace.Event{
				PC:    0x400000 + 4*uint32(rng.Intn(64)),
				Ins:   isa.Instruction{Op: isa.BEQ, Rs: r1, Rt: r2, Imm: imm},
				Taken: rng.Intn(2) == 0,
			})
		case 8:
			events = append(events, trace.Event{Ins: isa.Instruction{Op: isa.JALR, Rd: isa.RA, Rs: r1}})
		case 9:
			events = append(events, trace.Event{Ins: isa.Instruction{Op: isa.JR, Rs: isa.RA}})
		case 10:
			if rng.Intn(4) == 0 {
				events = append(events, evSyscall())
			} else {
				events = append(events, trace.Event{Ins: isa.Instruction{Op: isa.NOP}})
			}
		case 11:
			events = append(events, trace.Event{Ins: isa.Instruction{Op: isa.MULT, Rs: r1, Rt: r2}})
			events = append(events, trace.Event{Ins: isa.Instruction{Op: isa.MFLO, Rd: regs[rng.Intn(len(regs))]}})
		}
	}
	return events[:n]
}

// deltaConfigs is the configuration matrix the delta differential sweeps:
// every switch that changes what the builder compiles (syscall policy,
// renaming, branch policies) or what the splice maintains (window,
// functional units, profiles, distributions, budgets, latencies).
func deltaConfigs() []Config {
	zero := Config{}
	df := Dataflow(SyscallConservative)
	windowed := Dataflow(SyscallOptimistic)
	windowed.WindowSize = 24
	windowed.Lifetimes = true
	windowed.Sharing = true
	fu := Config{Syscalls: SyscallOptimistic, FunctionalUnits: 2, StorageProfile: true}
	branchy := Dataflow(SyscallConservative)
	branchy.Branches = BranchTwoBit
	branchy.PredictorBits = 4
	branchy.Lifetimes = true
	branchy.Sharing = true
	stall := Config{Branches: BranchStall, Lifetimes: true, Sharing: true}
	static := Config{Branches: BranchStatic, RenameStack: true, UnitLatency: true}
	slow := Config{LatencyOverride: map[isa.OpClass]int{isa.ClassIntMul: 9}}
	governed := Dataflow(SyscallConservative)
	governed.WindowSize = 64
	governed.MemBudget = 8 << 10
	governed.BudgetPolicy = budget.Degrade
	warn := Config{MemBudget: 4 << 10, BudgetPolicy: budget.WarnOnly, StorageProfile: true}
	return []Config{zero, df, windowed, fu, branchy, stall, static, slow, governed, warn}
}

// buildDelta compiles events[lo:hi] speculatively.
func buildDelta(t *testing.T, cfg Config, events []trace.Event, lo, hi int) *ShardDelta {
	t.Helper()
	b := NewDeltaBuilder(cfg, uint64(lo))
	if err := b.Events(events[lo:hi]); err != nil {
		t.Fatalf("build [%d:%d): %v", lo, hi, err)
	}
	return b.Delta()
}

// cuts picks 0-3 random cut points splitting n events into segments.
func cuts(rng *rand.Rand, n int) []int {
	pts := []int{0}
	for k := rng.Intn(4); k > 0; k-- {
		pts = append(pts, rng.Intn(n+1))
	}
	pts = append(pts, n)
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j] < pts[j-1]; j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	return pts
}

// TestDeltaDifferentialMonolithic is the core equivalence pin: compiling a
// trace into per-segment deltas with no entry state and splicing them in
// order onto a fresh analyzer produces a Result deep-equal to feeding every
// event through Analyzer.Event, across the whole configuration matrix.
func TestDeltaDifferentialMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for ci, cfg := range deltaConfigs() {
		for trial := 0; trial < 8; trial++ {
			events := richTrace(rng, 150+rng.Intn(400))
			want := analyze(t, cfg, events)

			a := NewAnalyzer(cfg)
			pts := cuts(rng, len(events))
			for i := 1; i < len(pts); i++ {
				d := buildDelta(t, cfg, events, pts[i-1], pts[i])
				if err := a.ApplyDelta(d); err != nil {
					t.Fatalf("config %d trial %d: apply [%d:%d): %v", ci, trial, pts[i-1], pts[i], err)
				}
			}
			got, err := a.Finish()
			if err != nil {
				t.Fatalf("config %d trial %d: finish: %v", ci, trial, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("config %d trial %d cuts %v: speculative splice differs from monolithic:\n got %+v\nwant %+v",
					ci, trial, pts, got, want)
			}
		}
	}
}

// TestDeltaSpliceEquivalenceQuick pins the satellite's equivalence property:
// splicing shard i+1's delta onto shard i's exit checkpoint is
// indistinguishable from chaining the events through the restored analyzer.
func TestDeltaSpliceEquivalenceQuick(t *testing.T) {
	cfgs := deltaConfigs()
	f := func(seed int64, rawCut uint16, rawCfg uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := cfgs[int(rawCfg)%len(cfgs)]
		events := richTrace(rng, 120)
		cut := int(rawCut) % (len(events) + 1)

		warm := NewAnalyzer(cfg)
		for i := range events[:cut] {
			if err := warm.Event(&events[i]); err != nil {
				return false
			}
		}
		cp := warm.Snapshot()

		chained := cp.Restore()
		for i := cut; i < len(events); i++ {
			if err := chained.Event(&events[i]); err != nil {
				return false
			}
		}
		want, err := chained.Finish()
		if err != nil {
			return false
		}

		spliced := cp.Restore()
		b := NewDeltaBuilder(cfg, uint64(cut))
		if b.Events(events[cut:]) != nil {
			return false
		}
		if spliced.ApplyDelta(b.Delta()) != nil {
			return false
		}
		got, err := spliced.Finish()
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaIdentityQuick: an empty delta is a no-op splice — applying it
// anywhere in a run changes nothing.
func TestDeltaIdentityQuick(t *testing.T) {
	cfgs := deltaConfigs()
	f := func(seed int64, rawCut uint16, rawCfg uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := cfgs[int(rawCfg)%len(cfgs)]
		events := richTrace(rng, 100)
		cut := int(rawCut) % (len(events) + 1)

		plain := NewAnalyzer(cfg)
		withZero := NewAnalyzer(cfg)
		for i := range events {
			if i == cut {
				zero := NewDeltaBuilder(cfg, uint64(i)).Delta()
				if withZero.ApplyDelta(zero) != nil {
					return false
				}
			}
			if plain.Event(&events[i]) != nil || withZero.Event(&events[i]) != nil {
				return false
			}
		}
		a, err1 := plain.Finish()
		b, err2 := withZero.Finish()
		return err1 == nil && err2 == nil && reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaConcatQuick: splicing is compositional and associative. For
// consecutive deltas a, b, c: Concat(a, b) applied once equals applying a
// then b, and Concat(Concat(a,b),c) is structurally identical (deep-equal,
// not just behaviorally equal) to Concat(a,Concat(b,c)).
func TestDeltaConcatQuick(t *testing.T) {
	cfgs := deltaConfigs()
	f := func(seed int64, rawCfg uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := cfgs[int(rawCfg)%len(cfgs)]
		events := richTrace(rng, 180)
		pts := []int{0, 60, 120, len(events)}

		var ds []*ShardDelta
		for i := 1; i < len(pts); i++ {
			b := NewDeltaBuilder(cfg, uint64(pts[i-1]))
			if b.Events(events[pts[i-1]:pts[i]]) != nil {
				return false
			}
			ds = append(ds, b.Delta())
		}

		ab, err := ds[0].Concat(ds[1])
		if err != nil {
			return false
		}
		abc1, err := ab.Concat(ds[2])
		if err != nil {
			return false
		}
		bc, err := ds[1].Concat(ds[2])
		if err != nil {
			return false
		}
		abc2, err := ds[0].Concat(bc)
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(abc1, abc2) {
			return false
		}

		// Behavioral: one concatenated splice == three chained splices.
		split := NewAnalyzer(cfg)
		for _, d := range ds {
			if split.ApplyDelta(d) != nil {
				return false
			}
		}
		whole := NewAnalyzer(cfg)
		if whole.ApplyDelta(abc1) != nil {
			return false
		}
		a, err1 := split.Finish()
		b, err2 := whole.Finish()
		return err1 == nil && err2 == nil && reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaBudgetFailFastParity: under a fail-fast budget the splice fails
// with exactly the error — same event index, same message — the sequential
// analyzer reports.
func TestDeltaBudgetFailFastParity(t *testing.T) {
	cfg := Dataflow(SyscallConservative)
	cfg.MemBudget = 1 << 10
	cfg.BudgetPolicy = budget.FailFast

	rng := rand.New(rand.NewSource(99))
	var events []trace.Event
	for i := 0; i < 4096; i++ {
		events = append(events, evStore(isa.T0, 0x10000000+4*uint32(rng.Intn(4096)), trace.SegData))
	}

	mono := NewAnalyzer(cfg)
	var wantErr error
	for i := range events {
		if wantErr = mono.Event(&events[i]); wantErr != nil {
			break
		}
	}
	if wantErr == nil {
		t.Fatal("monolithic run stayed under a 1KB budget")
	}

	b := NewDeltaBuilder(cfg, 0)
	if err := b.Events(events); err != nil {
		t.Fatalf("build: %v", err)
	}
	spec := NewAnalyzer(cfg)
	gotErr := spec.ApplyDelta(b.Delta())
	if gotErr == nil {
		t.Fatal("splice stayed under a 1KB budget")
	}
	if gotErr.Error() != wantErr.Error() {
		t.Errorf("splice error %q, want %q", gotErr, wantErr)
	}
}

// TestDeltaValidationParity: the builder rejects malformed events with the
// same absolute-index error the analyzer reports, and keeps the prefix
// before the failure so the driver can order errors like a chained run.
func TestDeltaValidationParity(t *testing.T) {
	events := richTrace(rand.New(rand.NewSource(7)), 40)
	bad := trace.Event{Ins: isa.Instruction{Op: isa.ADD}, MemSize: 4, Seg: trace.SegData}
	events = append(events[:25], append([]trace.Event{bad}, events[25:]...)...)

	cfg := Dataflow(SyscallConservative)
	const start = 1000
	mono := NewAnalyzer(cfg)
	mono.instructions = start // position the oracle at the same offset
	var wantErr error
	for i := range events {
		if wantErr = mono.Event(&events[i]); wantErr != nil {
			break
		}
	}
	if wantErr == nil {
		t.Fatal("monolithic analyzer accepted the malformed event")
	}

	b := NewDeltaBuilder(cfg, start)
	gotErr := b.Events(events)
	if gotErr == nil {
		t.Fatal("builder accepted the malformed event")
	}
	if gotErr.Error() != wantErr.Error() {
		t.Errorf("builder error %q, want %q", gotErr, wantErr)
	}
	if !strings.Contains(gotErr.Error(), "1025") {
		t.Errorf("builder error %q does not carry the absolute event index", gotErr)
	}
	if got := b.Delta().Events; got != 25 {
		t.Errorf("prefix delta has %d events, want 25", got)
	}
}

// TestDeltaGuards: the splice refuses deltas that cannot line up — wrong
// position, mismatched build config, finished analyzer.
func TestDeltaGuards(t *testing.T) {
	cfg := Config{}
	d := NewDeltaBuilder(cfg, 5).Delta()
	a := NewAnalyzer(cfg)
	if err := a.ApplyDelta(d); err == nil || !strings.Contains(err.Error(), "starts at event 5") {
		t.Errorf("offset guard: %v", err)
	}

	other := Config{RenameRegisters: true}
	d2 := NewDeltaBuilder(other, 0).Delta()
	if err := a.ApplyDelta(d2); err == nil || !strings.Contains(err.Error(), "built for config") {
		t.Errorf("sig guard: %v", err)
	}

	if _, err := a.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := a.ApplyDelta(NewDeltaBuilder(cfg, 0).Delta()); err == nil {
		t.Error("finished analyzer accepted a delta")
	}

	// Concat guards: seam mismatch and config mismatch.
	if _, err := NewDeltaBuilder(cfg, 0).Delta().Concat(NewDeltaBuilder(cfg, 3).Delta()); err == nil {
		t.Error("Concat accepted a seam gap")
	}
	if _, err := NewDeltaBuilder(cfg, 0).Delta().Concat(NewDeltaBuilder(other, 0).Delta()); err == nil {
		t.Error("Concat accepted mismatched configs")
	}
}
