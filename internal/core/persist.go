package core

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"paragraph/internal/budget"
	"paragraph/internal/isa"
	"paragraph/internal/stats"
)

// Checkpoint persistence: a Checkpoint can be written to disk and read back
// in a later process, so a killed analysis resumes from its last autosave
// instead of from the beginning of the trace.
//
// The encoding is a short magic header followed by a gob stream of exported
// mirror structs (gob cannot see unexported fields). Everything the analyzer
// tracks round-trips exactly — gob preserves float64 bits, so even the
// LogDist running sums are reproduced bit-for-bit. The one deliberate
// omission is the death schedule: it can rival the live well in size, and it
// is a pure function of the trace, so ResumeTwoPass recomputes it with a
// fresh discovery pass when the persisted analysis had one.
//
// Saves are crash-safe: SaveCheckpoint writes to a temporary file in the
// destination directory and renames it into place, so a crash mid-write
// leaves the previous checkpoint intact and a reader never observes a
// half-written file.

// checkpointMagic identifies and versions the on-disk format. v2 replaced
// the live-well and FU-schedule maps with sorted slices: gob writes map
// entries in iteration order, so v1 files were semantically stable but not
// byte-reproducible — two saves of the same state could differ. Fleet-mode
// pgserved asserts byte equality of persisted shard files across machines,
// which needs encoding determinism, not just value equality.
const checkpointMagic = "paragraph-checkpoint-v2\n"

// valueState mirrors the live well's value record.
type valueState struct {
	Level   int64
	LastUse int64
	Uses    uint32
}

// memValueState is one live memory word, keyed for the sorted slice below.
type memValueState struct {
	Word uint32
	Val  valueState
}

// wellState mirrors liveWell. Mem is sorted by word address so the encoding
// is deterministic.
type wellState struct {
	Regs     [isa.NumRegs]valueState
	RegLive  [isa.NumRegs]bool
	Mem      []memValueState
	PreLevel int64
}

// fuCountState is one level's in-flight operation count.
type fuCountState struct {
	Level int64
	N     int
}

// fuState mirrors fuSchedule. Counts is sorted by level for the same
// determinism reason as wellState.Mem.
type fuState struct {
	Units  int
	Counts []fuCountState
	Floor  int64
}

// predState mirrors predictor.
type predState struct {
	Policy      BranchPolicy
	Counters    []uint8
	Mask        uint32
	Branches    uint64
	Mispredicts uint64
}

// checkpointState is the complete exported mirror of a Checkpoint. Window
// state is persisted compacted (the consumed head prefix dropped).
type checkpointState struct {
	EventOffset      uint64
	HasDeathSchedule bool

	Config       Config
	HighestLevel int64
	Deepest      int64
	AnyOps       bool

	Profile   *stats.LevelHistogramState
	Lifetimes stats.LogDistState
	Sharing   stats.LogDistState
	Storage   *stats.LevelHistogramState

	WindowSeqs   []uint64
	WindowLevels []int64

	FU   *fuState
	Pred *predState

	GovernorStats *budget.GovernorStats

	Well wellState

	Instructions uint64
	Ops          uint64
	Syscalls     uint64
	ClassCounts  [16]uint64
	MaxLiveMem   int
}

// state snapshots the checkpoint's analyzer into the exported mirror.
func (cp *Checkpoint) state() *checkpointState {
	a := cp.a
	st := &checkpointState{
		EventOffset:      cp.EventOffset,
		HasDeathSchedule: a.deaths != nil,
		Config:           a.cfg.Clone(),
		HighestLevel:     a.highestLevel,
		Deepest:          a.deepest,
		AnyOps:           a.anyOps,
		Lifetimes:        a.lifetimes.State(),
		Sharing:          a.sharing.State(),
		Instructions:     a.instructions,
		Ops:              a.ops,
		Syscalls:         a.syscalls,
		ClassCounts:      a.classCounts,
		MaxLiveMem:       a.maxLiveMem,
	}
	if a.profile != nil {
		s := a.profile.State()
		st.Profile = &s
	}
	if a.storage != nil {
		s := a.storage.State()
		st.Storage = &s
	}
	st.WindowSeqs = make([]uint64, 0, a.window.count())
	st.WindowLevels = make([]int64, 0, a.window.count())
	if n := len(a.window.buf); n > 0 {
		mask := uint64(n - 1)
		for k := a.window.head; k < a.window.tail; k++ {
			e := &a.window.buf[k&mask]
			st.WindowSeqs = append(st.WindowSeqs, e.seq)
			st.WindowLevels = append(st.WindowLevels, e.level)
		}
	}
	if a.fu != nil {
		counts := make([]fuCountState, 0, len(a.fu.counts))
		for k, v := range a.fu.counts {
			counts = append(counts, fuCountState{Level: k, N: v})
		}
		sort.Slice(counts, func(i, j int) bool { return counts[i].Level < counts[j].Level })
		st.FU = &fuState{Units: a.fu.units, Counts: counts, Floor: a.fu.floor}
	}
	if a.pred != nil {
		st.Pred = &predState{
			Policy:      a.pred.policy,
			Counters:    append([]uint8(nil), a.pred.counters...),
			Mask:        a.pred.mask,
			Branches:    a.pred.branches,
			Mispredicts: a.pred.mispredicts,
		}
	}
	if a.gov != nil {
		s := a.gov.Stats()
		st.GovernorStats = &s
	}
	st.Well = wellStateOf(a.well)
	return st
}

// wellStateOf snapshots the live well.
func wellStateOf(w *liveWell) wellState {
	ws := wellState{
		RegLive:  w.regLive,
		Mem:      make([]memValueState, 0, w.mem.len()),
		PreLevel: w.preLevel,
	}
	for i, v := range w.regs {
		ws.Regs[i] = valueState{Level: v.level, LastUse: v.lastUse, Uses: v.uses}
	}
	w.mem.forEach(func(word uint32, v value) {
		ws.Mem = append(ws.Mem, memValueState{Word: word, Val: valueState{Level: v.level, LastUse: v.lastUse, Uses: v.uses}})
	})
	sort.Slice(ws.Mem, func(i, j int) bool { return ws.Mem[i].Word < ws.Mem[j].Word })
	return ws
}

// restore rebuilds a Checkpoint (including its analyzer) from the mirror.
func (st *checkpointState) restore() (*Checkpoint, error) {
	a := &Analyzer{
		cfg:          st.Config.Clone(),
		well:         newLiveWell(),
		highestLevel: st.HighestLevel,
		deepest:      st.Deepest,
		anyOps:       st.AnyOps,
		lifetimes:    stats.LogDistFromState(st.Lifetimes),
		sharing:      stats.LogDistFromState(st.Sharing),
		instructions: st.Instructions,
		ops:          st.Ops,
		syscalls:     st.Syscalls,
		classCounts:  st.ClassCounts,
		maxLiveMem:   st.MaxLiveMem,
	}
	if st.Profile != nil {
		a.profile = stats.LevelHistogramFromState(*st.Profile)
	}
	if st.Storage != nil {
		a.storage = stats.LevelHistogramFromState(*st.Storage)
	}
	if len(st.WindowSeqs) != len(st.WindowLevels) {
		return nil, fmt.Errorf("core: corrupt checkpoint: window seqs/levels length mismatch (%d vs %d)",
			len(st.WindowSeqs), len(st.WindowLevels))
	}
	a.window = windowState{}
	for i := range st.WindowSeqs {
		a.window.push(st.WindowSeqs[i], st.WindowLevels[i])
	}
	if st.FU != nil {
		a.fu = newFUSchedule(st.FU.Units)
		for _, c := range st.FU.Counts {
			a.fu.counts[c.Level] = c.N
		}
		a.fu.floor = st.FU.Floor
	}
	if st.Pred != nil {
		a.pred = &predictor{
			policy:      st.Pred.Policy,
			counters:    append([]uint8(nil), st.Pred.Counters...),
			mask:        st.Pred.Mask,
			branches:    st.Pred.Branches,
			mispredicts: st.Pred.Mispredicts,
		}
	}
	if a.cfg.MemBudget > 0 {
		a.gov = budget.New(a.cfg.MemBudget, a.cfg.BudgetPolicy)
		if st.GovernorStats != nil {
			a.gov.RestoreStats(*st.GovernorStats)
		}
	}
	a.well.regLive = st.Well.RegLive
	a.well.preLevel = st.Well.PreLevel
	for i, v := range st.Well.Regs {
		a.well.regs[i] = value{level: v.Level, lastUse: v.LastUse, uses: v.Uses}
	}
	for _, m := range st.Well.Mem {
		a.well.mem.put(m.Word, value{level: m.Val.Level, lastUse: m.Val.LastUse, uses: m.Val.Uses})
	}
	return &Checkpoint{
		EventOffset: st.EventOffset,
		a:           a,
		needDeaths:  st.HasDeathSchedule,
	}, nil
}

// WriteCheckpoint serializes the checkpoint to w.
func WriteCheckpoint(w io.Writer, cp *Checkpoint) error {
	if _, err := io.WriteString(w, checkpointMagic); err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(cp.state()); err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint deserializes a checkpoint written by WriteCheckpoint. The
// returned checkpoint resumes via ResumeTwoPass; if the original analysis
// used a death schedule, resumption re-runs the discovery pass first.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("core: read checkpoint: %w", err)
	}
	if !bytes.Equal(magic, []byte(checkpointMagic)) {
		return nil, fmt.Errorf("core: read checkpoint: bad magic %q", magic)
	}
	var st checkpointState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: read checkpoint: %w", err)
	}
	return st.restore()
}

// SaveCheckpoint atomically writes the checkpoint to path: the bytes land in
// a temporary file in the same directory, are synced, and are renamed into
// place, so a crash at any point leaves either the old file or the new one —
// never a torn write.
func SaveCheckpoint(path string, cp *Checkpoint) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: save checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	bw := bufio.NewWriter(tmp)
	if err := WriteCheckpoint(bw, cp); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: save checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("core: save checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: save checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: save checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint saved by SaveCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load checkpoint: %w", err)
	}
	defer f.Close()
	return ReadCheckpoint(bufio.NewReader(f))
}
