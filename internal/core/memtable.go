package core

// memTable is the open-addressed hash table behind the live well's memory
// half: word address -> value record. It replaces the earlier
// map[uint32]value, which paid a hash-map bucket walk (plus interface-free
// but cache-hostile overflow chasing) on every load and store of the
// analysis hot loop. The design is tuned for the trace access pattern —
// word addresses are dense in a few regions, lookups vastly outnumber
// deletes, and the table grows monotonically except under two-pass
// eviction:
//
//   - power-of-two capacity with Fibonacci (multiplicative) hashing, so
//     the probe start is a multiply and a shift, no modulo;
//   - linear probing, so a probe sequence is one cache line most of the
//     time (keys are stored apart from the 24-byte records, keeping the
//     key scan dense);
//   - tombstone-free deletion by backward shift, so deletes (two-pass
//     dead-value eviction) never degrade later probes;
//   - incremental growth: when the load factor crosses 3/4 the table
//     allocates a double-size successor and migrates a bounded number of
//     slots per subsequent write, so no single Event call pays a
//     full-table rehash.
//
// The zero memTable is ready to use. The table is not safe for concurrent
// use, matching the analyzer it belongs to.
type memTable struct {
	keys []uint32
	vals []value
	used []bool
	mask uint32 // len(keys) - 1
	n    int    // live entries in keys/vals/used

	// Pending migration source: while old is non-nil, lookups consult it
	// after the main table and every mutating call moves up to
	// memMigrateStep old slots forward. oldN tracks entries still there.
	old     *memTable
	oldScan uint32 // next old slot to migrate
}

const (
	// memTableMinCap is the initial capacity of a table's first
	// allocation; must be a power of two.
	memTableMinCap = 256
	// memMigrateStep bounds how many source slots one mutating operation
	// migrates while a grown table drains its predecessor.
	memMigrateStep = 64
)

// hash maps a word address to its home slot with Fibonacci hashing
// (2654435769 = floor(2^32/phi)); high bits select the slot, so nearby
// addresses scatter.
func (t *memTable) hash(key uint32) uint32 {
	return (key * 2654435769) & t.mask
}

// find returns the slot holding key and whether it is present, probing
// only the main table.
func (t *memTable) find(key uint32) (uint32, bool) {
	if t.n == 0 {
		return 0, false
	}
	i := t.hash(key)
	for t.used[i] {
		if t.keys[i] == key {
			return i, true
		}
		i = (i + 1) & t.mask
	}
	return i, false
}

// get returns the record for key, consulting the in-migration predecessor
// when one exists.
func (t *memTable) get(key uint32) (value, bool) {
	if i, ok := t.find(key); ok {
		return t.vals[i], true
	}
	if t.old != nil {
		if i, ok := t.old.find(key); ok {
			return t.old.vals[i], true
		}
	}
	return value{}, false
}

// put binds key to v, returning the previous record and whether one was
// present (the live well's memPut contract).
func (t *memTable) put(key uint32, v value) (value, bool) {
	t.migrate()
	if t.keys == nil {
		t.init(memTableMinCap)
	}
	if i, ok := t.find(key); ok {
		old := t.vals[i]
		t.vals[i] = v
		return old, true
	}
	// Not in the main table; an in-migration predecessor may still hold
	// the key — move its record's slot here so there is exactly one copy.
	var old value
	var had bool
	if t.old != nil {
		if i, ok := t.old.find(key); ok {
			old, had = t.old.vals[i], true
			t.old.del(key)
		}
	}
	t.insert(key, v)
	return old, had
}

// del removes key if present, reporting whether it was, with
// backward-shift compaction so no tombstone is left behind.
func (t *memTable) del(key uint32) bool {
	t.migrate()
	if t.delMain(key) {
		return true
	}
	return t.old != nil && t.old.delMain(key)
}

// delMain deletes from this table only (no predecessor lookup). Knuth's
// backward-shift: the hole moves forward through the probe cluster,
// pulling back every entry whose home position permits it, until the
// cluster ends.
func (t *memTable) delMain(key uint32) bool {
	i, ok := t.find(key)
	if !ok {
		return false
	}
	j := i
	for {
		t.used[i] = false
		for {
			j = (j + 1) & t.mask
			if !t.used[j] {
				t.n--
				return true
			}
			h := t.hash(t.keys[j])
			// The entry at j may fill the hole at i only if its home h
			// does not lie cyclically inside (i, j] — otherwise moving it
			// would break its own probe chain.
			if (j-h)&t.mask >= (j-i)&t.mask {
				t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
				t.used[i] = true
				i = j
				break
			}
		}
	}
}

// insert places a key known to be absent, growing first when the write
// would cross the 3/4 load ceiling.
func (t *memTable) insert(key uint32, v value) {
	if 4*(t.n+1) > 3*len(t.keys) {
		t.grow()
	}
	i := t.hash(key)
	for t.used[i] {
		i = (i + 1) & t.mask
	}
	t.keys[i], t.vals[i], t.used[i] = key, v, true
	t.n++
}

// init allocates the slot arrays at capacity c (a power of two).
func (t *memTable) init(c int) {
	t.keys = make([]uint32, c)
	t.vals = make([]value, c)
	t.used = make([]bool, c)
	t.mask = uint32(c - 1)
}

// grow starts (or, if one is already pending, completes) an incremental
// migration into a table of twice the capacity. The successor is sized so
// that it cannot itself need growing before the predecessor drains at
// memMigrateStep slots per write.
func (t *memTable) grow() {
	if t.old != nil {
		// Rare: the successor filled before the predecessor drained
		// (possible only under adversarial delete/insert interleaving).
		// Finish the pending migration before stacking another.
		t.drain()
	}
	prev := *t
	t.init(2 * len(prev.keys))
	t.n = 0
	t.old, t.oldScan = &prev, 0
	t.old.old = nil
	t.migrate()
}

// migrate advances a pending migration by at least memMigrateStep source
// slots, releasing the predecessor once it is empty. The frontier only ever
// rests on an empty old slot: stopping mid-cluster would break the probe
// chain of any key stored past the frontier whose home slot precedes it
// (old.find would die at the cleared home slot and report the key absent),
// so after the bounded sweep the scan continues until it clears a whole
// number of probe clusters. The wrap-around cluster at the array end needs
// no special casing — its tail (slots [0,e)) is cleared whole by the first
// sweep, and every key remaining in its head has home and storage both in
// the head (a forward probe cannot cross the empty slot that bounds it).
func (t *memTable) migrate() {
	if t.old == nil {
		return
	}
	end := uint32(len(t.old.keys))
	limit := t.oldScan + memMigrateStep
	if limit > end {
		limit = end
	}
	for t.oldScan < limit {
		t.migrateSlot()
	}
	for t.oldScan < end && t.old.used[t.oldScan] {
		t.migrateSlot()
	}
	if t.old.n == 0 {
		t.old = nil
		return
	}
	if t.oldScan >= end {
		// Invariant violation: the scan cleared every slot yet the entry
		// count says records remain (backward-shift deletes cannot move an
		// entry across the empty slot the frontier rests on). Rescue with a
		// full sweep rather than dropping live records, then release.
		for i := range t.old.used {
			if t.old.used[i] {
				t.insert(t.old.keys[i], t.old.vals[i])
				t.old.used[i] = false
			}
		}
		t.old = nil
	}
}

// migrateSlot moves one predecessor slot into the main table and advances
// the frontier past it.
func (t *memTable) migrateSlot() {
	if t.old.used[t.oldScan] {
		t.insert(t.old.keys[t.oldScan], t.old.vals[t.oldScan])
		t.old.used[t.oldScan] = false
		t.old.n--
	}
	t.oldScan++
}

// drain completes any pending migration in one go.
func (t *memTable) drain() {
	for t.old != nil {
		t.migrate()
	}
}

// len returns the number of live entries, including any still awaiting
// migration.
func (t *memTable) len() int {
	n := t.n
	if t.old != nil {
		n += t.old.n
	}
	return n
}

// forEach visits every live entry, predecessor included. Visit order is
// unspecified (as it was with the map); callers fold entries into
// order-independent accumulators.
func (t *memTable) forEach(fn func(key uint32, v value)) {
	for i, u := range t.used {
		if u {
			fn(t.keys[i], t.vals[i])
		}
	}
	if t.old != nil {
		t.old.forEach(fn)
	}
}

// clone deep-copies the table, pending migration and all.
func (t *memTable) clone() *memTable {
	c := *t
	c.keys = append([]uint32(nil), t.keys...)
	c.vals = append([]value(nil), t.vals...)
	c.used = append([]bool(nil), t.used...)
	if t.old != nil {
		c.old = t.old.clone()
	}
	return &c
}
