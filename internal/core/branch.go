package core

import (
	"paragraph/internal/isa"
	"paragraph/internal/trace"
)

// BranchPolicy models control dependencies. The paper's headline analysis
// assumes perfect control flow ("the window size is the same size as the
// trace (no control dependencies)"), but Section 3.2 notes that "the
// firewall can also be used to represent the effect of a mispredicted
// conditional branch, resulting in all operations after the conditional
// branch being placed into the DDG with a control dependency to the
// firewall". These policies implement that mechanism with a family of
// predictors, bounding how much of the dataflow parallelism real control
// speculation could reach.
type BranchPolicy uint8

const (
	// BranchPerfect assumes an oracle: branches never constrain
	// placement. This is the paper's default.
	BranchPerfect BranchPolicy = iota
	// BranchStall treats every conditional branch as unpredicted: a
	// firewall follows each one, so no later operation may be placed
	// above the branch's resolution. The no-speculation lower bound.
	BranchStall
	// BranchStatic predicts backward branches taken and forward
	// branches not taken (BTFN), firewalling mispredictions.
	BranchStatic
	// BranchTwoBit uses a table of two-bit saturating counters indexed
	// by branch PC, firewalling mispredictions.
	BranchTwoBit
)

func (p BranchPolicy) String() string {
	switch p {
	case BranchPerfect:
		return "perfect"
	case BranchStall:
		return "stall"
	case BranchStatic:
		return "static-btfn"
	case BranchTwoBit:
		return "two-bit"
	}
	return "branch-policy?"
}

// defaultPredictorBits sizes the two-bit counter table (2^bits entries).
const defaultPredictorBits = 12

// predictor is the dynamic-prediction state.
type predictor struct {
	policy   BranchPolicy
	counters []uint8 // 2-bit saturating counters, initialized weakly not-taken
	mask     uint32

	branches    uint64
	mispredicts uint64
}

func newPredictor(policy BranchPolicy, bits int) *predictor {
	p := &predictor{policy: policy}
	if policy == BranchTwoBit {
		if bits <= 0 {
			bits = defaultPredictorBits
		}
		if bits > 24 {
			bits = 24
		}
		p.counters = make([]uint8, 1<<bits)
		for i := range p.counters {
			p.counters[i] = 1 // weakly not-taken
		}
		p.mask = uint32(len(p.counters) - 1)
	}
	return p
}

// mispredicted consumes one conditional branch — its PC, the sign of its
// displacement, and whether it was taken — and reports whether the modelled
// predictor got it wrong. The event is passed as fields rather than a
// *trace.Event so the speculative splice (ApplyDelta), which replays
// compiled branch records instead of events, drives the same predictor
// state machine.
func (p *predictor) mispredicted(pc uint32, immNeg, taken bool) bool {
	p.branches++
	var predictTaken bool
	switch p.policy {
	case BranchStall:
		p.mispredicts++
		return true
	case BranchStatic:
		predictTaken = immNeg // backward-taken, forward-not-taken
	case BranchTwoBit:
		idx := (pc >> 2) & p.mask
		predictTaken = p.counters[idx] >= 2
		if taken {
			if p.counters[idx] < 3 {
				p.counters[idx]++
			}
		} else if p.counters[idx] > 0 {
			p.counters[idx]--
		}
	default:
		return false
	}
	if predictTaken != taken {
		p.mispredicts++
		return true
	}
	return false
}

// branchResolution computes the DDG level at which a conditional branch's
// outcome is known: one step after its deepest source value (or the
// firewall floor).
func (a *Analyzer) branchResolution(e *trace.Event) int64 {
	base := a.highestLevel - 1
	a.srcBuf = e.Ins.SourceRegs(a.srcBuf[:0])
	for _, r := range a.srcBuf {
		if r == isa.Zero {
			continue
		}
		if rec := a.well.reg(r); rec.level > base {
			base = rec.level
		}
	}
	return base + a.cfg.latency(e.Ins.Op)
}
