package core

import (
	"maps"
	"slices"
)

// Checkpoint is a resumable snapshot of an in-progress analysis: the full
// analyzer state (live well, firewall floor, window, schedules, statistics)
// together with the trace position it was taken at. A long analysis pass
// that is interrupted — a crash, a deploy, a preempted batch job — restarts
// from its last checkpoint instead of from the beginning of a
// 100M-instruction trace.
//
// Checkpoints are in-memory objects: the live well dominates their size,
// exactly as it dominates the analyzer's. Restore may be called any number
// of times; each call yields an independent analyzer.
type Checkpoint struct {
	// EventOffset is the number of trace events consumed when the snapshot
	// was taken; resumption must skip exactly this many events.
	EventOffset uint64

	a *Analyzer

	// needDeaths marks a checkpoint that was loaded from disk without its
	// death schedule (schedules are not persisted — they can rival the live
	// well in size). ResumeTwoPass re-runs the discovery pass for such
	// checkpoints; in-memory snapshots keep sharing the original schedule.
	needDeaths bool
}

// Snapshot deep-copies the analyzer's state into a checkpoint. The analyzer
// remains usable; the checkpoint is unaffected by further events.
func (a *Analyzer) Snapshot() *Checkpoint {
	return &Checkpoint{EventOffset: a.instructions, a: a.clone()}
}

// Restore returns a fresh analyzer positioned exactly as the snapshotted one
// was: feeding it the events after EventOffset reproduces the original run.
func (cp *Checkpoint) Restore() *Analyzer {
	return cp.a.clone()
}

// clone deep-copies the analyzer. Value-typed state (scalars, the LogDist
// distributions, the Config apart from its override map) copies with the
// struct; reference-typed state is duplicated below. The death schedule is
// shared: it is immutable once computed.
func (a *Analyzer) clone() *Analyzer {
	b := *a
	b.cfg.LatencyOverride = maps.Clone(a.cfg.LatencyOverride)
	b.well = a.well.clone()
	if a.profile != nil {
		b.profile = a.profile.Clone()
	}
	if a.storage != nil {
		b.storage = a.storage.Clone()
	}
	b.window = windowState{
		buf:  slices.Clone(a.window.buf),
		head: a.window.head,
		tail: a.window.tail,
	}
	if a.fu != nil {
		b.fu = a.fu.clone()
	}
	if a.pred != nil {
		b.pred = a.pred.clone()
	}
	if a.gov != nil {
		b.gov = a.gov.Clone()
	}
	b.srcBuf = nil
	return &b
}

// clone deep-copies the live well. The register arrays copy with the struct;
// only the memory table needs duplication.
func (w *liveWell) clone() *liveWell {
	c := *w
	c.mem = *w.mem.clone()
	return &c
}

// clone deep-copies the functional-unit schedule.
func (f *fuSchedule) clone() *fuSchedule {
	c := *f
	c.counts = maps.Clone(f.counts)
	return &c
}

// clone deep-copies the branch predictor (its counter table in particular).
func (p *predictor) clone() *predictor {
	c := *p
	c.counters = slices.Clone(p.counters)
	return &c
}
