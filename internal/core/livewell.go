package core

import (
	"paragraph/internal/isa"
)

// value is one live-well record: the state of the value currently bound to a
// storage location.
type value struct {
	// level is the DDG level at which the value becomes available for
	// use by other computation (the paper's L).
	level int64
	// lastUse is the deepest base level of any consumer of the value,
	// initialized to the creation level. The storage-dependency term of
	// the placement rule is lastUse+1 (the paper's Ddest+1).
	lastUse int64
	// uses counts consumers (the degree of sharing of the token).
	uses uint32
}

// liveWell is the hash table of live values of Section 3.2. Register-space
// locations use a dense array; memory words use an open-addressed table
// keyed by word address (see memTable — linear probing, backward-shift
// deletion, incremental growth). A value becomes dead when its location is
// overwritten, at which point the record is recycled — the paper's
// single-pass forward cleanup strategy ("a value has become dead after its
// storage location is reused").
type liveWell struct {
	regs    [isa.NumRegs]value
	regLive [isa.NumRegs]bool
	mem     memTable

	// preLevel is where locations that existed before the program began
	// (pre-initialized registers, DATA-segment words) are considered to
	// have been created; it tracks highestLevel-1 so pre-existing values
	// never delay any computation (the paper's first special case).
	preLevel int64
}

func newLiveWell() *liveWell {
	return &liveWell{}
}

// preExisting returns a fresh record for a location touched before ever
// being written during the analyzed trace.
func (w *liveWell) preExisting() value {
	return value{level: w.preLevel, lastUse: w.preLevel}
}

// reg returns the record for a register, creating a pre-existing-value
// record on first touch. The returned pointer is stable and mutable.
func (w *liveWell) reg(r isa.Reg) *value {
	if !w.regLive[r] {
		w.regs[r] = w.preExisting()
		w.regLive[r] = true
	}
	return &w.regs[r]
}

// regIfLive returns the register record only if the register currently
// holds a live (previously written or read) value.
func (w *liveWell) regIfLive(r isa.Reg) (value, bool) {
	if !w.regLive[r] {
		return value{}, false
	}
	return w.regs[r], true
}

// setReg binds a new value record to a register, returning the previous
// record and whether one was live (for lifetime/sharing accounting).
func (w *liveWell) setReg(r isa.Reg, v value) (value, bool) {
	old, wasLive := w.regs[r], w.regLive[r]
	w.regs[r] = v
	w.regLive[r] = true
	return old, wasLive
}

// memGet returns the record for a memory word (by word address = byte
// address >> 2), creating nothing. The bool reports liveness.
func (w *liveWell) memGet(word uint32) (value, bool) {
	return w.mem.get(word)
}

// memRead returns the record for a memory word for use as a source,
// creating a pre-existing record on first touch (DATA-segment values and
// untouched stack/heap read before any traced write).
func (w *liveWell) memRead(word uint32) value {
	if v, ok := w.mem.get(word); ok {
		return v
	}
	v := w.preExisting()
	w.mem.put(word, v)
	return v
}

// memPut stores the record for a memory word, returning the previous record
// and whether one was live.
func (w *liveWell) memPut(word uint32, v value) (value, bool) {
	return w.mem.put(word, v)
}

// memDelete evicts a memory word's record (two-pass dead-value analysis).
func (w *liveWell) memDelete(word uint32) {
	w.mem.del(word)
}

// memLen returns the number of live memory words.
func (w *liveWell) memLen() int {
	return w.mem.len()
}

// size returns the number of live locations (registers + memory words);
// this is the live-well working set the paper had to fight to keep in 32 MB.
func (w *liveWell) size() int {
	n := w.mem.len()
	for _, live := range w.regLive {
		if live {
			n++
		}
	}
	return n
}

// forEachLive visits every live record; used to flush lifetime/sharing
// statistics at the end of the trace.
func (w *liveWell) forEachLive(fn func(v value)) {
	for r := range w.regs {
		if w.regLive[r] {
			fn(w.regs[r])
		}
	}
	w.mem.forEach(func(_ uint32, v value) {
		fn(v)
	})
}
