package shard

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"paragraph/internal/core"
	"paragraph/internal/faultinject"
	"paragraph/internal/trace"
)

// FuzzSplitter feeds arbitrary bytes — valid traces, damaged traces, pure
// garbage — through Split and asserts the splitter's contract: it never
// panics, it never cuts mid-chunk (every shard decodes independently and
// delivers exactly the events the plan promised), and the per-shard event
// counts and ReadStats sum to what one monolithic read of the same bytes
// delivers.
func FuzzSplitter(f *testing.F) {
	valid := func(n int, seed int64, chunk int) []byte {
		var buf bytes.Buffer
		w, err := trace.NewWriterOpts(&buf, trace.WriterOptions{ChunkBytes: chunk})
		if err != nil {
			f.Fatal(err)
		}
		events := synthEvents(n, seed)
		for i := range events {
			if err := w.Event(&events[i]); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	small := valid(400, 1, 128)
	f.Add(small, uint8(3), true)
	f.Add(small, uint8(1), false)
	f.Add(valid(50, 2, 64), uint8(7), true)
	f.Add(small[:len(small)/2], uint8(2), true) // torn tail
	if c, err := faultinject.CorruptChunk(small, 2, 99); err == nil {
		f.Add(c, uint8(4), true)
	}
	if d, err := faultinject.DuplicateChunk(small, 1); err == nil {
		f.Add(d, uint8(3), true)
	}
	f.Add([]byte("PGTRACE2"), uint8(2), true)
	f.Add([]byte("PGTRACE1junk"), uint8(2), true)
	f.Add([]byte{}, uint8(1), false)
	f.Add(bytes.Repeat([]byte{0xD7, 'P', 'G', 0xC5}, 50), uint8(5), true)

	f.Fuzz(func(t *testing.T, data []byte, nRaw uint8, degraded bool) {
		n := int(nRaw%8) + 1
		plan, err := Split(data, n, Options{Degraded: degraded})
		if err != nil {
			// Bad magic, v1 traces, and fail-fast corruption are all
			// legitimate refusals; the contract is only about plans that
			// were produced.
			return
		}

		// Structural invariants: contiguous coverage of the whole trace
		// body, indices in order, event chain consistent.
		if len(plan.Shards) < 1 || len(plan.Shards) > n {
			t.Fatalf("%d shards from n=%d", len(plan.Shards), n)
		}
		var events uint64
		next := int64(trace.HeaderBytes)
		for i, sh := range plan.Shards {
			if sh.Index != i || sh.Start != next || sh.StartEvent != events {
				t.Fatalf("shard %d malformed: %+v (want start %d, startEvent %d)", i, sh, next, events)
			}
			events += sh.Events
			next = sh.End
		}
		if next != int64(len(data)) {
			t.Fatalf("plan covers %d bytes of %d", next, len(data))
		}
		if events != plan.TotalEvents {
			t.Fatalf("shard events sum %d != plan total %d", events, plan.TotalEvents)
		}

		// Decode oracle: a monolithic read of the same bytes must deliver
		// exactly the planned events with exactly the planned ReadStats,
		// and each shard must decode independently to its promised count,
		// with per-shard ReadStats summing to the monolithic ones. This is
		// the "never split mid-chunk" property in executable form — a cut
		// inside a chunk cannot decode to the right event counts.
		r, err := trace.NewReaderOpts(bytes.NewReader(data), trace.ReaderOptions{Degraded: degraded})
		if err != nil {
			t.Fatalf("plan produced for unreadable trace: %v", err)
		}
		var whole uint64
		var e trace.Event
		for {
			if err := r.Next(&e); err != nil {
				break
			}
			whole++
		}
		if whole != plan.TotalEvents {
			t.Fatalf("monolithic read delivers %d events, plan says %d", whole, plan.TotalEvents)
		}
		if r.Stats() != plan.Stats {
			t.Fatalf("monolithic ReadStats %+v != plan stats %+v", r.Stats(), plan.Stats)
		}
		ctx := context.Background()
		var sum trace.ReadStats
		for _, sh := range plan.Shards {
			buf, err := DecodeShard(ctx, data, sh, degraded)
			if err != nil {
				t.Fatalf("shard %d failed to decode: %v", sh.Index, err)
			}
			if uint64(buf.Len()) != sh.Events {
				t.Fatalf("shard %d delivered %d events, plan says %d", sh.Index, buf.Len(), sh.Events)
			}
			st := buf.Stats()
			sum.Chunks += st.Chunks
			sum.SkippedChunks += st.SkippedChunks
			sum.SkippedEvents += st.SkippedEvents
			sum.DuplicateChunks += st.DuplicateChunks
			sum.ResyncBytes += st.ResyncBytes
		}
		if sum != plan.Stats {
			t.Fatalf("summed shard ReadStats %+v != monolithic %+v", sum, plan.Stats)
		}
	})
}

// FuzzSpeculativeEquivalence feeds arbitrary bytes and shard counts through
// the chained and speculative drivers and asserts they are observationally
// equivalent: both succeed with deep-equal Results and identical ReadStats,
// or both fail. The speculative pass compiles every shard with no entry
// state, so any divergence here means a record was mis-encoded or the seam
// splice dropped state — exactly the bugs a hand-written differential can
// miss on traces it didn't think of.
func FuzzSpeculativeEquivalence(f *testing.F) {
	valid := func(n int, seed int64, chunk int) []byte {
		var buf bytes.Buffer
		w, err := trace.NewWriterOpts(&buf, trace.WriterOptions{ChunkBytes: chunk})
		if err != nil {
			f.Fatal(err)
		}
		events := synthEvents(n, seed)
		for i := range events {
			if err := w.Event(&events[i]); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	small := valid(400, 21, 128)
	f.Add(small, uint8(3), true)
	f.Add(small, uint8(1), false)
	f.Add(valid(60, 22, 64), uint8(7), false)
	f.Add(small[:len(small)/2], uint8(2), true) // torn tail
	if c, err := faultinject.CorruptChunk(small, 2, 99); err == nil {
		f.Add(c, uint8(4), true)
	}
	if d, err := faultinject.DuplicateChunk(small, 1); err == nil {
		f.Add(d, uint8(3), true)
	}
	f.Add([]byte("PGTRACE2"), uint8(2), true)
	f.Add([]byte{}, uint8(1), false)
	f.Add(bytes.Repeat([]byte{0xD7, 'P', 'G', 0xC5}, 50), uint8(5), true)

	f.Fuzz(func(t *testing.T, data []byte, nRaw uint8, degraded bool) {
		n := int(nRaw%8) + 1
		// Two configs with different build signatures (branch modeling on
		// and off) so signature-dependent record paths both run.
		cfgs := []core.Config{
			fullConfig(),
			{Branches: core.BranchTwoBit, PredictorBits: 4, WindowSize: 128},
		}
		ctx := context.Background()
		chained, crs, cerr := AnalyzeMulti(ctx, data, cfgs, n, Options{Degraded: degraded})
		spec, srs, serr := AnalyzeMulti(ctx, data, cfgs, n, Options{Degraded: degraded, Speculate: true})
		if (cerr == nil) != (serr == nil) {
			t.Fatalf("drivers disagree on failure: chained err %v, speculative err %v", cerr, serr)
		}
		if cerr != nil {
			return
		}
		if crs != srs {
			t.Fatalf("ReadStats: chained %+v, speculative %+v", crs, srs)
		}
		for i := range cfgs {
			if !reflect.DeepEqual(chained[i], spec[i]) {
				t.Fatalf("config %d: speculative Result differs from chained (n=%d, degraded=%v)", i, n, degraded)
			}
		}
	})
}
