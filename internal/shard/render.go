package shard

import (
	"fmt"
	"io"
	"sort"

	"paragraph/internal/core"
	"paragraph/internal/stats"
	"paragraph/internal/trace"
)

// RenderMerge writes the human-readable report of a merged shard analysis:
// a per-shard table (byte range, chunks, events) followed by the combined
// metrics and read accounting. The output is deterministic for a given
// input, so it golden-tests cleanly (see internal/harness).
func RenderMerge(w io.Writer, res *core.Result, rs trace.ReadStats, parts []*Result) error {
	sorted := append([]*Result(nil), parts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })

	t := stats.NewTable("Shard", "Start", "End", "Chunks", "Events", "Skipped", "Resync B")
	for _, p := range sorted {
		t.AddRow(p.Index, p.StartEvent, p.StartEvent+p.Events, p.ReadStats.Chunks,
			stats.FormatInt(int64(p.Events)), p.ReadStats.SkippedChunks, p.ReadStats.ResyncBytes)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "instructions:    %d\n", res.Instructions)
	fmt.Fprintf(w, "operations:      %d\n", res.Operations)
	fmt.Fprintf(w, "critical path:   %d\n", res.CriticalPath)
	fmt.Fprintf(w, "available:       %.2f\n", res.Available)
	if res.Governor != nil && res.Governor.Governed() {
		fmt.Fprintf(w, "governed:        %d degradations, effective window %d\n",
			res.Governor.Degradations, res.Governor.EffectiveWindow)
	}
	if rs.SkippedChunks > 0 || rs.DuplicateChunks > 0 || rs.ResyncBytes > 0 {
		fmt.Fprintf(w, "degraded read:   %d chunks ok, %d skipped (%d events), %d duplicates, %d resync bytes\n",
			rs.Chunks, rs.SkippedChunks, rs.SkippedEvents, rs.DuplicateChunks, rs.ResyncBytes)
	}
	return nil
}
