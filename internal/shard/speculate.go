package shard

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"

	"paragraph/internal/core"
	"paragraph/internal/trace"
)

// Speculative sharding: the chained driver (AnalyzePlan) overlaps decode
// with analysis, but analysis of shard i+1 still waits on shard i's exit
// live-well, so the analyzer remains the wall. The speculative driver
// breaks the chain: every shard is compiled concurrently — with no entry
// state at all — into a relocatable core.ShardDelta by core.DeltaBuilder
// (the expensive structural pass: validation, location-to-slot resolution,
// record encoding), and a cheap sequential fix-up pass splices the deltas
// in shard order onto one analyzer per config (core.Analyzer.ApplyDelta).
// The splice is exact, so results are deep-equal to the chained and
// monolithic runs — the differential battery in speculate_test.go and
// internal/harness enforces it on clean, damaged and budget-governed
// traces.

// BuildShardDelta runs the speculative pass over one decoded shard. On a
// validation failure the returned delta is non-nil and covers the events
// before the bad one; callers splice that prefix before reporting the
// error so failures surface in chained order (an earlier shard's budget
// error must win over a later shard's bad event, and within one shard a
// governor trip before the bad event must win too).
func BuildShardDelta(ctx context.Context, buf *trace.EventBuffer, cfg core.Config, sh Shard) (*core.ShardDelta, error) {
	b := core.NewDeltaBuilder(cfg, sh.StartEvent)
	b.Grow(buf.Len())
	if err := buf.ReplayBatches(ctx, b); err != nil {
		return b.Delta(), fmt.Errorf("shard %d: %w", sh.Index, err)
	}
	return b.Delta(), nil
}

// RunShardDelta is RunShard for a speculatively built shard: it splices the
// delta onto an analyzer carrying the state of all preceding shards and
// harvests the same per-shard Result a chained run produces — so persisted
// results, resume, and Merge are oblivious to which driver ran the shard.
func RunShardDelta(a *core.Analyzer, d *core.ShardDelta, cfg core.Config, rs trace.ReadStats, index, total int, wantCheckpoint bool) (*Result, *core.Checkpoint, error) {
	if err := a.BeginShard(); err != nil {
		return nil, nil, fmt.Errorf("shard %d: %w", index, err)
	}
	if err := a.ApplyDelta(d); err != nil {
		return nil, nil, fmt.Errorf("shard %d: %w", index, err)
	}
	res := &Result{
		Index:      index,
		Shards:     total,
		Config:     cfg,
		StartEvent: d.StartEvent,
		Events:     d.Events,
		ReadStats:  rs,
	}
	var cp *core.Checkpoint
	if wantCheckpoint {
		cp = a.Snapshot()
	}
	if index == total-1 {
		fin, err := a.Finish()
		if err != nil {
			return nil, nil, fmt.Errorf("shard %d: %w", index, err)
		}
		res.Final = fin
	}
	// Harvest after Finish so the last shard's stats include end-of-trace
	// retirements (still-live values folded into lifetime/sharing).
	res.Stats = a.ShardStats()
	return res, cp, nil
}

// analyzePlanSpeculative is the parallel in-process driver behind
// Options.Speculate: shard byte ranges decode in one bounded pool, every
// (config, shard) pair's speculative build runs in a second bounded pool as
// soon as its shard is decoded, and one sequential splice chain per config
// consumes the deltas in shard order, freeing each as it lands. The only
// serial work left per config is the fix-up pass, so shards genuinely
// analyze concurrently.
func analyzePlanSpeculative(ctx context.Context, data []byte, cfgs []core.Config, plan *Plan, workers int) ([]*core.Result, trace.ReadStats, error) {
	ns := len(plan.Shards)
	bufs, decErrs, ready := startDecode(ctx, data, plan, workers)

	// Build stage. Scheduled shard-major so every config's chain can start
	// splicing shard 0 while later shards still build.
	deltas := make([][]*core.ShardDelta, len(cfgs))
	buildErrs := make([][]error, len(cfgs))
	built := make([][]chan struct{}, len(cfgs))
	for ci := range cfgs {
		deltas[ci] = make([]*core.ShardDelta, ns)
		buildErrs[ci] = make([]error, ns)
		built[ci] = make([]chan struct{}, ns)
		for si := range built[ci] {
			built[ci][si] = make(chan struct{})
		}
	}
	buildSem := make(chan struct{}, workers)
	go func() {
		for si := range plan.Shards {
			<-ready[si]
			for ci := range cfgs {
				if decErrs[si] != nil {
					close(built[ci][si])
					continue
				}
				buildSem <- struct{}{}
				go func(ci, si int) {
					defer func() { <-buildSem; close(built[ci][si]) }()
					deltas[ci][si], buildErrs[ci][si] = BuildShardDelta(ctx, bufs[si], cfgs[ci], plan.Shards[si])
				}(ci, si)
			}
		}
	}()

	// Splice stage: one sequential fix-up chain per config (the chains
	// themselves run in parallel, bounded separately from the pools above —
	// sharing one semaphore could deadlock the pipeline).
	results := make([]*core.Result, len(cfgs))
	readStats := make([]trace.ReadStats, len(cfgs))
	errs := make([]error, len(cfgs))
	anSem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for ci := range cfgs {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			anSem <- struct{}{}
			defer func() { <-anSem }()
			a := core.NewAnalyzer(cfgs[ci])
			parts := make([]*Result, ns)
			for si := range plan.Shards {
				<-built[ci][si]
				if decErrs[si] != nil {
					errs[ci] = fmt.Errorf("config %d: %w", ci, decErrs[si])
					return
				}
				d, berr := deltas[ci][si], buildErrs[ci][si]
				deltas[ci][si] = nil // freed as the chain advances
				if berr != nil {
					// Splice the prefix before reporting: if the chained
					// run would have tripped the governor before reaching
					// the bad event, that error must win here too.
					if d != nil && d.Events > 0 {
						if aerr := spliceOnly(a, d, si); aerr != nil {
							errs[ci] = fmt.Errorf("config %d: %w", ci, aerr)
							return
						}
					}
					errs[ci] = fmt.Errorf("config %d: %w", ci, berr)
					return
				}
				part, _, err := RunShardDelta(a, d, cfgs[ci], bufs[si].Stats(), si, ns, false)
				if err != nil {
					errs[ci] = fmt.Errorf("config %d: %w", ci, err)
					return
				}
				parts[si] = part
			}
			res, rs, err := Merge(parts)
			if err != nil {
				errs[ci] = fmt.Errorf("config %d: %w", ci, err)
				return
			}
			results[ci], readStats[ci] = res, rs
		}(ci)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, trace.ReadStats{}, err
		}
	}
	return results, readStats[0], nil
}

// spliceOnly applies a prefix delta (from a failed build) without
// harvesting a Result.
func spliceOnly(a *core.Analyzer, d *core.ShardDelta, index int) error {
	if err := a.BeginShard(); err != nil {
		return fmt.Errorf("shard %d: %w", index, err)
	}
	if err := a.ApplyDelta(d); err != nil {
		return fmt.Errorf("shard %d: %w", index, err)
	}
	return nil
}

// Delta is one shard's speculative contribution in portable form: the chain
// metadata and read accounting a Result would carry, plus the relocatable
// record stream instead of finished statistics. pgshard analyze -speculate
// writes one per shard — built with no predecessor, so all shards can run
// concurrently across processes — and pgshard merge splices them.
type Delta struct {
	// Index and Shards place the delta in its plan.
	Index  int
	Shards int
	// Config is the full analysis configuration (the delta itself only
	// pins the build-relevant switches); the merger reconstructs the
	// analyzer from it.
	Config core.Config
	// ReadStats is the shard's decode accounting.
	ReadStats trace.ReadStats
	// D is the relocatable shard delta.
	D *core.ShardDelta
}

// Splice validates a complete chain of speculative shard deltas and runs
// the sequential fix-up, returning the same per-shard Results a chained run
// produces plus the merged whole-trace Result and summed ReadStats.
func Splice(deltas []*Delta) ([]*Result, *core.Result, trace.ReadStats, error) {
	if len(deltas) == 0 {
		return nil, nil, trace.ReadStats{}, errors.New("shard: no deltas to splice")
	}
	sorted := append([]*Delta(nil), deltas...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	n := sorted[0].Shards
	if len(sorted) != n {
		return nil, nil, trace.ReadStats{}, fmt.Errorf("shard: have %d deltas of a %d-shard plan", len(sorted), n)
	}
	var nextEvent uint64
	for i, d := range sorted {
		if d.Index != i {
			return nil, nil, trace.ReadStats{}, fmt.Errorf("shard: deltas are not shards 0..%d (missing or duplicate index %d)", n-1, d.Index)
		}
		if d.Shards != n {
			return nil, nil, trace.ReadStats{}, fmt.Errorf("shard %d: from a %d-shard plan, others from %d", i, d.Shards, n)
		}
		if !reflect.DeepEqual(d.Config, sorted[0].Config) {
			return nil, nil, trace.ReadStats{}, fmt.Errorf("shard %d: config differs from shard 0's", i)
		}
		if d.D == nil {
			return nil, nil, trace.ReadStats{}, fmt.Errorf("shard %d: delta carries no record stream", i)
		}
		if d.D.StartEvent != nextEvent {
			return nil, nil, trace.ReadStats{}, fmt.Errorf("shard %d: starts at event %d, chain is at %d", i, d.D.StartEvent, nextEvent)
		}
		nextEvent += d.D.Events
	}
	a := core.NewAnalyzer(sorted[0].Config)
	parts := make([]*Result, n)
	for i, d := range sorted {
		part, _, err := RunShardDelta(a, d.D, d.Config, d.ReadStats, i, n, false)
		if err != nil {
			return nil, nil, trace.ReadStats{}, err
		}
		parts[i] = part
	}
	res, rs, err := Merge(parts)
	if err != nil {
		return nil, nil, trace.ReadStats{}, err
	}
	return parts, res, rs, nil
}
