package shard

import (
	"errors"
	"fmt"
	"reflect"
	"sort"

	"paragraph/internal/budget"
	"paragraph/internal/core"
	"paragraph/internal/stats"
	"paragraph/internal/trace"
)

// Result is one shard's contribution to an analysis: chain metadata for
// validation, the shard's read accounting, its slice of the mergeable
// statistics, and — on the last shard only — the finished core.Result
// carrying everything that flows through the checkpoint chain (critical
// path, scalars, class counts, peak memory). All fields gob-encode, so
// shard results can cross process and machine boundaries.
type Result struct {
	// Index and Shards place this result in its plan: shard Index of
	// Shards total.
	Index  int
	Shards int
	// Config is the analysis configuration, identical across shards.
	Config core.Config
	// StartEvent and Events tie the result into the event chain: this
	// shard covered [StartEvent, StartEvent+Events).
	StartEvent uint64
	Events     uint64
	// ReadStats is this shard's read accounting; the per-shard stats sum
	// to the monolithic read's.
	ReadStats trace.ReadStats
	// Stats holds the shard's mergeable accumulators.
	Stats core.ShardStats
	// Final is the finished whole-trace Result, set only on the last
	// shard (its analyzer carries all preceding shards' state via the
	// checkpoint chain).
	Final *core.Result
}

// Merge validates a complete set of shard results and reassembles the
// monolithic Result: scalars, critical path and class counts come from the
// last shard's finished Result (checkpoint handoff already made them
// whole-trace values); profiles, distributions and governor accounting are
// recombined from the per-shard contributions. The returned ReadStats are
// the per-shard sums. For results produced by one analysis chain over one
// trace, the merged Result is deep-equal to the monolithic run's — the
// differential battery in internal/harness enforces exactly that.
func Merge(parts []*Result) (*core.Result, trace.ReadStats, error) {
	if len(parts) == 0 {
		return nil, trace.ReadStats{}, errors.New("shard: no results to merge")
	}
	sorted := append([]*Result(nil), parts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	n := sorted[0].Shards
	if len(sorted) != n {
		return nil, trace.ReadStats{}, fmt.Errorf("shard: have %d results of a %d-shard plan", len(sorted), n)
	}
	var nextEvent uint64
	for i, p := range sorted {
		if p.Index != i {
			return nil, trace.ReadStats{}, fmt.Errorf("shard: results are not shards 0..%d (missing or duplicate index %d)", n-1, p.Index)
		}
		if p.Shards != n {
			return nil, trace.ReadStats{}, fmt.Errorf("shard %d: from a %d-shard plan, others from %d", i, p.Shards, n)
		}
		if !reflect.DeepEqual(p.Config, sorted[0].Config) {
			return nil, trace.ReadStats{}, fmt.Errorf("shard %d: config differs from shard 0's", i)
		}
		if p.StartEvent != nextEvent {
			return nil, trace.ReadStats{}, fmt.Errorf("shard %d: starts at event %d, chain is at %d", i, p.StartEvent, nextEvent)
		}
		nextEvent += p.Events
		if i < n-1 && p.Final != nil {
			return nil, trace.ReadStats{}, fmt.Errorf("shard %d: non-final shard carries a finished Result", i)
		}
	}
	last := sorted[n-1]
	if last.Final == nil {
		return nil, trace.ReadStats{}, fmt.Errorf("shard %d: final shard has no finished Result", n-1)
	}

	out := *last.Final
	cfg := out.Config
	if cfg.Profile {
		h, err := mergeHists(sorted, func(p *Result) *stats.LevelHistogramState { return p.Stats.Profile })
		if err != nil {
			return nil, trace.ReadStats{}, fmt.Errorf("shard: parallelism profile: %w", err)
		}
		out.Profile = h.Profile()
		out.ProfileBucketWidth = h.Width()
		out.PeakOps = 0
		for _, pt := range out.Profile {
			if pt.Ops > out.PeakOps {
				out.PeakOps = pt.Ops
			}
		}
	}
	if cfg.StorageProfile {
		h, err := mergeHists(sorted, func(p *Result) *stats.LevelHistogramState { return p.Stats.Storage })
		if err != nil {
			return nil, trace.ReadStats{}, fmt.Errorf("shard: storage profile: %w", err)
		}
		out.StorageProfile = h.Profile()
	}
	if cfg.Lifetimes {
		out.Lifetimes = mergeDists(sorted, func(p *Result) stats.LogDistState { return p.Stats.Lifetime })
	}
	if cfg.Sharing {
		out.Sharing = mergeDists(sorted, func(p *Result) stats.LogDistState { return p.Stats.Sharing })
	}
	if last.Final.Governor != nil {
		out.Governor = mergeGovernor(sorted)
	}
	var rs trace.ReadStats
	for _, p := range sorted {
		rs.Chunks += p.ReadStats.Chunks
		rs.SkippedChunks += p.ReadStats.SkippedChunks
		rs.SkippedEvents += p.ReadStats.SkippedEvents
		rs.DuplicateChunks += p.ReadStats.DuplicateChunks
		rs.ResyncBytes += p.ReadStats.ResyncBytes
	}
	return &out, rs, nil
}

// mergeHists folds the per-shard histogram states, in shard order, into one
// histogram. Levels are absolute (DDG levels, trace positions), so the
// merge is exact: the shard that reached the deepest level determines the
// bucket width, and power-of-two widths nest (see LevelHistogram.Merge).
func mergeHists(parts []*Result, get func(*Result) *stats.LevelHistogramState) (*stats.LevelHistogram, error) {
	var h *stats.LevelHistogram
	for _, p := range parts {
		s := get(p)
		if s == nil {
			return nil, fmt.Errorf("shard %d: histogram missing", p.Index)
		}
		if h == nil {
			h = stats.LevelHistogramFromState(*s)
			continue
		}
		h.Merge(stats.LevelHistogramFromState(*s))
	}
	return h, nil
}

// mergeDists folds the per-shard distribution states in shard order. Counts
// and extremes combine exactly; the float64 sums are integer-valued (Add
// takes int64), so the addition is exact while totals stay below 2^53 and
// the merged sum matches the monolithic one bit for bit.
func mergeDists(parts []*Result, get func(*Result) stats.LogDistState) stats.LogDist {
	var d stats.LogDist
	for _, p := range parts {
		o := stats.LogDistFromState(get(p))
		d.Merge(&o)
	}
	return d
}

// mergeGovernor reassembles whole-run governor accounting: counters sum,
// peaks max, EffectiveWindow is the value after the run's last degradation
// (the last shard that degraded), and the engine-downgrade flag ORs.
func mergeGovernor(parts []*Result) *budget.GovernorStats {
	var g budget.GovernorStats
	for _, p := range parts {
		ps := p.Stats.Governor
		if ps == nil {
			continue
		}
		g.Checks += ps.Checks
		g.Warnings += ps.Warnings
		g.Degradations += ps.Degradations
		if ps.PeakBytes > g.PeakBytes {
			g.PeakBytes = ps.PeakBytes
		}
		if ps.PeakLiveWellBytes > g.PeakLiveWellBytes {
			g.PeakLiveWellBytes = ps.PeakLiveWellBytes
		}
		if ps.EffectiveWindow != 0 {
			g.EffectiveWindow = ps.EffectiveWindow
		}
		g.EngineDowngraded = g.EngineDowngraded || ps.EngineDowngraded
	}
	return &g
}
