package shard

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"paragraph/internal/core"
)

// File formats for distributed sharding: the plan travels as JSON (small,
// human-inspectable, diffable), shard results as gob behind a versioned
// magic (they embed histogram states and a checkpoint, where gob's exact
// float64 round-trip matters).

// WritePlan writes the plan as indented JSON.
func WritePlan(w io.Writer, p *Plan) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadPlan reads a plan written by WritePlan.
func ReadPlan(r io.Reader) (*Plan, error) {
	var p Plan
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("shard: reading plan: %w", err)
	}
	return &p, nil
}

// SavePlan and LoadPlan are the file-path conveniences over
// WritePlan/ReadPlan.
func SavePlan(path string, p *Plan) error {
	var buf bytes.Buffer
	if err := WritePlan(&buf, p); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// LoadPlan reads a plan file written by SavePlan.
func LoadPlan(path string) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPlan(f)
}

// resultMagic versions the shard-result file format.
const resultMagic = "pgshard-result-v1\n"

// resultRecord is the gob payload of a shard-result file: the shard's
// Result plus, for every shard but the last, the outgoing analyzer state
// (core.WriteCheckpoint bytes) the next shard's process resumes from.
type resultRecord struct {
	Result     *Result
	Checkpoint []byte
}

// WriteResult writes one shard's result, and its outgoing checkpoint if
// any, to w.
func WriteResult(w io.Writer, res *Result, cp *core.Checkpoint) error {
	rec := resultRecord{Result: res}
	if cp != nil {
		var buf bytes.Buffer
		if err := core.WriteCheckpoint(&buf, cp); err != nil {
			return fmt.Errorf("shard %d: encoding checkpoint: %w", res.Index, err)
		}
		rec.Checkpoint = buf.Bytes()
	}
	if _, err := io.WriteString(w, resultMagic); err != nil {
		return err
	}
	if err := gob.NewEncoder(w).Encode(rec); err != nil {
		return fmt.Errorf("shard %d: encoding result: %w", res.Index, err)
	}
	return nil
}

// ReadResult reads a shard-result stream written by WriteResult. The
// returned checkpoint is nil when the file carries none (the last shard).
func ReadResult(r io.Reader) (*Result, *core.Checkpoint, error) {
	magic := make([]byte, len(resultMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, nil, fmt.Errorf("shard: reading result magic: %w", err)
	}
	if string(magic) != resultMagic {
		return nil, nil, fmt.Errorf("shard: not a shard-result file (magic %q)", magic)
	}
	var rec resultRecord
	if err := gob.NewDecoder(r).Decode(&rec); err != nil {
		return nil, nil, fmt.Errorf("shard: decoding result: %w", err)
	}
	if rec.Result == nil {
		return nil, nil, fmt.Errorf("shard: result file carries no result")
	}
	var cp *core.Checkpoint
	if len(rec.Checkpoint) > 0 {
		var err error
		cp, err = core.ReadCheckpoint(bytes.NewReader(rec.Checkpoint))
		if err != nil {
			return nil, nil, fmt.Errorf("shard %d: decoding checkpoint: %w", rec.Result.Index, err)
		}
	}
	return rec.Result, cp, nil
}

// SaveResult writes a shard-result file atomically: temp file, sync,
// rename — a crashed shard run never leaves a torn result for the next
// shard to resume from.
func SaveResult(path string, res *Result, cp *core.Checkpoint) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".pgshard-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteResult(tmp, res, cp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadResult reads a shard-result file written by SaveResult.
func LoadResult(path string) (*Result, *core.Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadResult(f)
}

// deltaMagic versions the speculative shard-delta file format. It is
// distinct from resultMagic so pgshard merge can sniff which kind of
// per-shard file it was handed.
const deltaMagic = "pgshard-delta-v1\n"

// WriteDelta writes one shard's speculative delta to w.
func WriteDelta(w io.Writer, d *Delta) error {
	if _, err := io.WriteString(w, deltaMagic); err != nil {
		return err
	}
	if err := gob.NewEncoder(w).Encode(d); err != nil {
		return fmt.Errorf("shard %d: encoding delta: %w", d.Index, err)
	}
	return nil
}

// ReadDelta reads a shard-delta stream written by WriteDelta.
func ReadDelta(r io.Reader) (*Delta, error) {
	magic := make([]byte, len(deltaMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("shard: reading delta magic: %w", err)
	}
	if string(magic) != deltaMagic {
		return nil, fmt.Errorf("shard: not a shard-delta file (magic %q)", magic)
	}
	var d Delta
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("shard: decoding delta: %w", err)
	}
	if d.D == nil {
		return nil, fmt.Errorf("shard: delta file carries no record stream")
	}
	return &d, nil
}

// SaveDelta writes a shard-delta file atomically (temp, sync, rename),
// like SaveResult.
func SaveDelta(path string, d *Delta) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".pgshard-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteDelta(tmp, d); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadDelta reads a shard-delta file written by SaveDelta.
func LoadDelta(path string) (*Delta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDelta(f)
}
