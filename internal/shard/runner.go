package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"paragraph/internal/core"
	"paragraph/internal/trace"
)

// DecodeShard decodes one shard's byte range into an EventBuffer, carrying
// the shard reader's ReadStats. The buffer can be replayed by any number of
// analyzers (different configs fan out over one decode). Decode honors ctx
// with the usual CtxCheckEvery granularity.
func DecodeShard(ctx context.Context, data []byte, sh Shard, degraded bool) (*trace.EventBuffer, error) {
	// Zero-copy section reader: chunks are CRC-verified and decoded in
	// place out of data, with no per-shard copy of the byte range.
	r, err := trace.NewBytesSectionReader(data, sh.Start, sh.End, trace.ReaderOptions{
		Degraded:      degraded,
		StartSeq:      sh.PrevSeq,
		StartSeqValid: sh.HavePrevSeq,
	})
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", sh.Index, err)
	}
	buf := &trace.EventBuffer{}
	buf.Grow(int(sh.Events)) // the plan counted this shard's events at Split time
	done := ctx.Done()
	batch := make([]trace.Event, trace.DefaultBatchEvents)
	for i := 0; ; {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("shard %d: decode canceled at event %d: %w", sh.Index, i, err)
			}
		}
		n, err := r.ReadBatch(batch)
		if n > 0 {
			_ = buf.Events(batch[:n]) // EventBuffer.Events never fails
			i += n
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", sh.Index, err)
		}
	}
	buf.SetStats(r.Stats())
	if got := uint64(buf.Len()); got != sh.Events {
		return nil, fmt.Errorf("shard %d: decoded %d events, plan says %d (trace modified since Split?)",
			sh.Index, got, sh.Events)
	}
	return buf, nil
}

// RunShard replays one decoded shard through an analyzer that carries the
// state of all preceding shards (a fresh analyzer for shard 0, a
// checkpoint-restored one otherwise). It resets the mergeable accumulators
// at entry and harvests them after the replay, finishing the analysis on
// the last shard. When wantCheckpoint is set, the analyzer's outgoing state
// is snapshotted (before any finish) for handoff to the next shard's
// process.
func RunShard(ctx context.Context, a *core.Analyzer, buf *trace.EventBuffer, cfg core.Config, sh Shard, total int, wantCheckpoint bool) (*Result, *core.Checkpoint, error) {
	if err := a.BeginShard(); err != nil {
		return nil, nil, fmt.Errorf("shard %d: %w", sh.Index, err)
	}
	if err := buf.ReplayBatches(ctx, a); err != nil {
		return nil, nil, fmt.Errorf("shard %d: %w", sh.Index, err)
	}
	res := &Result{
		Index:      sh.Index,
		Shards:     total,
		Config:     cfg,
		StartEvent: sh.StartEvent,
		Events:     uint64(buf.Len()),
		ReadStats:  buf.Stats(),
	}
	var cp *core.Checkpoint
	if wantCheckpoint {
		cp = a.Snapshot()
	}
	if sh.Index == total-1 {
		fin, err := a.Finish()
		if err != nil {
			return nil, nil, fmt.Errorf("shard %d: %w", sh.Index, err)
		}
		res.Final = fin
	}
	// Harvest after Finish so the last shard's stats include end-of-trace
	// retirements (still-live values folded into lifetime/sharing).
	res.Stats = a.ShardStats()
	return res, cp, nil
}

// Analyze splits the trace into n shards and analyzes it under one config,
// returning the merged Result and the summed ReadStats — deep-equal to
// what a monolithic core.AnalyzeTraceOpts run over the same bytes returns.
func Analyze(ctx context.Context, data []byte, cfg core.Config, n int, opts Options) (*core.Result, trace.ReadStats, error) {
	results, rs, err := AnalyzeMulti(ctx, data, []core.Config{cfg}, n, opts)
	if err != nil {
		return nil, trace.ReadStats{}, err
	}
	return results[0], rs, nil
}

// AnalyzeMulti is the pipelined in-process shard driver: the trace is split
// once, each shard's byte range is decoded and validated by a bounded
// worker pool, and one analysis chain per config walks the shards in order,
// handing analyzer state from shard to shard. Decode of shard i+1 overlaps
// analysis of shard i, and every config's chain replays the same decoded
// buffers (single-decode fan-out). Errors are reported deterministically:
// the failing config with the lowest index wins.
func AnalyzeMulti(ctx context.Context, data []byte, cfgs []core.Config, n int, opts Options) ([]*core.Result, trace.ReadStats, error) {
	if len(cfgs) == 0 {
		return nil, trace.ReadStats{}, errors.New("shard: no configs to analyze")
	}
	plan, err := Split(data, n, opts)
	if err != nil {
		return nil, trace.ReadStats{}, err
	}
	return AnalyzePlan(ctx, data, cfgs, plan, opts)
}

// AnalyzePlan runs AnalyzeMulti's decode and analysis stages over an
// existing plan (for callers that persist plans, like the pgshard CLI).
func AnalyzePlan(ctx context.Context, data []byte, cfgs []core.Config, plan *Plan, opts Options) ([]*core.Result, trace.ReadStats, error) {
	if plan.TraceBytes != int64(len(data)) {
		return nil, trace.ReadStats{}, fmt.Errorf("shard: plan is for a %d-byte trace, have %d bytes", plan.TraceBytes, len(data))
	}
	workers := opts.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opts.Speculate {
		return analyzePlanSpeculative(ctx, data, cfgs, plan, workers)
	}
	ns := len(plan.Shards)

	bufs, decErrs, ready := startDecode(ctx, data, plan, workers)

	// Analysis stage: one serial checkpoint-handoff chain per config, the
	// chains themselves running in parallel (bounded separately from the
	// decode pool — sharing one semaphore could deadlock the pipeline).
	results := make([]*core.Result, len(cfgs))
	readStats := make([]trace.ReadStats, len(cfgs))
	errs := make([]error, len(cfgs))
	anSem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for ci := range cfgs {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			anSem <- struct{}{}
			defer func() { <-anSem }()
			a := core.NewAnalyzer(cfgs[ci])
			parts := make([]*Result, ns)
			for si := range plan.Shards {
				<-ready[si]
				if decErrs[si] != nil {
					errs[ci] = fmt.Errorf("config %d: %w", ci, decErrs[si])
					return
				}
				part, _, err := RunShard(ctx, a, bufs[si], cfgs[ci], plan.Shards[si], ns, false)
				if err != nil {
					errs[ci] = fmt.Errorf("config %d: %w", ci, err)
					return
				}
				parts[si] = part
			}
			res, rs, err := Merge(parts)
			if err != nil {
				errs[ci] = fmt.Errorf("config %d: %w", ci, err)
				return
			}
			results[ci], readStats[ci] = res, rs
		}(ci)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, trace.ReadStats{}, err
		}
	}
	return results, readStats[0], nil
}

// startDecode launches the decode stage shared by the chained and
// speculative drivers: a bounded pool fills shard buffers; each buffer's
// ready channel closes when it is decoded, so downstream stages start on
// shard i while shard i+1 is still decoding.
func startDecode(ctx context.Context, data []byte, plan *Plan, workers int) (bufs []*trace.EventBuffer, decErrs []error, ready []chan struct{}) {
	ns := len(plan.Shards)
	bufs = make([]*trace.EventBuffer, ns)
	decErrs = make([]error, ns)
	ready = make([]chan struct{}, ns)
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	decSem := make(chan struct{}, workers)
	go func() {
		for i := range plan.Shards {
			decSem <- struct{}{}
			go func(i int) {
				defer func() { <-decSem; close(ready[i]) }()
				bufs[i], decErrs[i] = DecodeShard(ctx, data, plan.Shards[i], plan.Degraded)
			}(i)
		}
	}()
	return bufs, decErrs, ready
}
