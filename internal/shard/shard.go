// Package shard partitions a PGTRACE2 trace at chunk boundaries and
// reassembles per-shard analysis results into the exact Result a monolithic
// run produces.
//
// The v2 trace format resets its delta-PC state at every chunk boundary, so
// any accepted chunk is a valid decode entry point. A Split therefore cuts
// only at accepted, event-delivering chunk starts; each shard's byte range
// decodes independently (with the duplicate-chunk detector seeded so a
// shard reader behaves exactly like one reader that had consumed the
// preceding shards). The analysis itself is stateful — placement depends on
// the live well, window and predictor — so shard i's analyzer is seeded
// from shard i-1's state via checkpoint handoff, while decode/validation of
// later shards proceeds in parallel with analysis of earlier ones. The
// write-only statistics (parallelism/storage profiles, lifetime/sharing
// distributions, governor accounting) are harvested per shard and merged
// exactly; see core.ShardStats and Merge.
//
// The differential battery in internal/harness proves the invariant this
// package is built around: for any shard count N >= 1, over clean or
// damaged traces, Merge of the per-shard results is deep-equal to the
// monolithic Result, and the summed per-shard ReadStats equal the
// monolithic ReadStats.
package shard

import (
	"fmt"

	"paragraph/internal/trace"
)

// Options configures splitting and shard analysis.
type Options struct {
	// Degraded reads the trace in degraded mode: damaged chunks are
	// skipped and accounted instead of failing the analysis.
	Degraded bool
	// Concurrency bounds the worker pools (decode and per-config
	// analysis); <= 0 selects GOMAXPROCS.
	Concurrency int
	// Speculate analyzes all shards concurrently: each shard is compiled
	// against an unknown entry live-well into a relocatable
	// core.ShardDelta by a parallel speculative pass, and a cheap
	// sequential fix-up splices the deltas at shard seams. Results are
	// deep-equal to the chained (and monolithic) run; see speculate.go.
	Speculate bool
}

// Shard is one partition of a trace: a byte range that starts at an
// accepted chunk boundary (except shard 0, which starts right after the
// file magic) and ends where the next shard starts.
type Shard struct {
	// Index is the shard's position in the plan, 0-based.
	Index int
	// Start and End delimit the byte range [Start, End) of the trace.
	Start int64
	End   int64
	// Chunks is the number of event-delivering chunks in the range.
	Chunks int
	// Events is the number of events the range delivers.
	Events uint64
	// StartEvent is the number of events delivered by preceding shards.
	StartEvent uint64
	// PrevSeq is the sequence number of the last chunk delivered before
	// Start; it seeds the shard reader's duplicate detector so replayed
	// writes straddling a shard boundary are dropped exactly as a single
	// reader would drop them. Meaningful only when HavePrevSeq is set
	// (shard 0 has no predecessor).
	PrevSeq     uint32
	HavePrevSeq bool
}

// Plan is a complete partition of one trace. Shards are contiguous: shard
// 0 starts at trace.HeaderBytes, shard i+1 starts where shard i ends, and
// the last shard ends at the end of the file, so damaged or empty regions
// between event-delivering chunks belong to exactly one shard.
type Plan struct {
	// TraceBytes is the length of the trace the plan was computed from;
	// analysis validates it so a plan is never applied to a different file.
	TraceBytes int64
	// Degraded records the read mode the plan was computed under. Cut
	// points depend on it (degraded reads accept chunks after damage that
	// a fail-fast read never reaches), so analysis must use the same mode.
	Degraded bool
	// TotalEvents is the number of events the whole trace delivers.
	TotalEvents uint64
	// Stats is the ReadStats of the planning scan — what one monolithic
	// read of the trace accumulates. The summed per-shard ReadStats must
	// equal it; the differential battery enforces that.
	Stats trace.ReadStats
	// Shards holds the partition, in trace order.
	Shards []Shard
}

// Split scans the trace once and partitions it into at most n shards,
// balanced by delivered event count. The effective shard count is
// min(n, event-delivering chunks), and always at least 1: a trace that
// delivers nothing yields a single shard covering the whole file.
func Split(data []byte, n int, opts Options) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", n)
	}
	spans, rstats, err := trace.ScanChunkSpans(data, opts.Degraded)
	if err != nil {
		return nil, fmt.Errorf("shard: scanning trace: %w", err)
	}
	plan := &Plan{TraceBytes: int64(len(data)), Degraded: opts.Degraded, Stats: rstats}
	var total uint64
	for _, s := range spans {
		total += s.Events
	}
	plan.TotalEvents = total
	if len(spans) == 0 {
		plan.Shards = []Shard{{Start: trace.HeaderBytes, End: int64(len(data))}}
		return plan, nil
	}
	if n > len(spans) {
		n = len(spans)
	}
	shards := make([]Shard, 0, n)
	si := 0
	var cum uint64
	for g := 0; g < n; g++ {
		firstSpan := si
		startEvent := cum
		// Take spans until this group's proportional share of events is
		// reached, keeping at least one span per group — this one and
		// every group still to come. The last group absorbs the rest.
		target := total * uint64(g+1) / uint64(n)
		for si < len(spans) {
			if g < n-1 && si > firstSpan {
				if cum >= target || len(spans)-si <= n-g-1 {
					break
				}
			}
			cum += spans[si].Events
			si++
		}
		sh := Shard{
			Index:      g,
			Start:      spans[firstSpan].Start,
			Chunks:     si - firstSpan,
			Events:     cum - startEvent,
			StartEvent: startEvent,
		}
		if g == 0 {
			sh.Start = trace.HeaderBytes
		} else {
			sh.PrevSeq = spans[firstSpan-1].Seq
			sh.HavePrevSeq = true
		}
		shards = append(shards, sh)
	}
	for i := range shards {
		if i+1 < len(shards) {
			shards[i].End = shards[i+1].Start
		} else {
			shards[i].End = int64(len(data))
		}
	}
	plan.Shards = shards
	return plan, nil
}
