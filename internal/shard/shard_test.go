package shard

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"paragraph/internal/budget"
	"paragraph/internal/core"
	"paragraph/internal/faultinject"
	"paragraph/internal/isa"
	"paragraph/internal/trace"
)

// synthEvents builds a deterministic pseudo-random event stream that
// exercises registers, memory in both segments, branches and syscalls —
// enough structure for the analyzer's placement state to evolve
// non-trivially across shard boundaries.
func synthEvents(n int, seed int64) []trace.Event {
	rng := rand.New(rand.NewSource(seed))
	events := make([]trace.Event, 0, n)
	pc := uint32(0x400000)
	regs := []isa.Reg{isa.T0, isa.T1, isa.T2, isa.S0, isa.S1, isa.A0, isa.V0}
	for i := 0; i < n; i++ {
		r := func() isa.Reg { return regs[rng.Intn(len(regs))] }
		var e trace.Event
		switch rng.Intn(10) {
		case 0, 1, 2:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.ADDI, Rt: r(), Rs: r(), Imm: int32(rng.Intn(64) - 32)}}
		case 3, 4:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.ADDU, Rd: r(), Rs: r(), Rt: r()}}
		case 5:
			addr := 0x10000000 + uint32(rng.Intn(1<<12))*4
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.LW, Rt: r(), Rs: isa.GP},
				MemAddr: addr, MemSize: 4, Seg: trace.SegData}
		case 6:
			addr := 0x10000000 + uint32(rng.Intn(1<<12))*4
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.SW, Rt: r(), Rs: isa.GP},
				MemAddr: addr, MemSize: 4, Seg: trace.SegData}
		case 7:
			addr := 0x7fff0000 + uint32(rng.Intn(1<<8))*4
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.SW, Rt: r(), Rs: isa.SP},
				MemAddr: addr, MemSize: 4, Seg: trace.SegStack}
		case 8:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.BNE, Rs: r(), Rt: isa.Zero, Imm: -16},
				Taken: rng.Intn(2) == 0}
		default:
			if rng.Intn(50) == 0 {
				e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.SYSCALL}}
			} else {
				e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.LUI, Rt: r(), Imm: int32(rng.Intn(1 << 10))}}
			}
		}
		events = append(events, e)
		pc += 4
	}
	return events
}

// synthTrace writes the synthetic stream as a v2 trace with small chunks,
// so even short tests produce enough chunk boundaries to shard on.
func synthTrace(t testing.TB, n int, seed int64, chunkBytes int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriterOpts(&buf, trace.WriterOptions{ChunkBytes: chunkBytes})
	if err != nil {
		t.Fatal(err)
	}
	events := synthEvents(n, seed)
	for i := range events {
		if err := w.Event(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fullConfig turns on every mergeable collection path.
func fullConfig() core.Config {
	cfg := core.Dataflow(core.SyscallConservative)
	cfg.Profile = true
	cfg.ProfileBuckets = 512
	cfg.StorageProfile = true
	cfg.Lifetimes = true
	cfg.Sharing = true
	return cfg
}

func monolithic(t testing.TB, data []byte, cfg core.Config, degraded bool) (*core.Result, trace.ReadStats) {
	t.Helper()
	var rs trace.ReadStats
	res, err := core.AnalyzeTraceOpts(context.Background(), bytes.NewReader(data), cfg,
		core.TwoPassOptions{Degraded: degraded, Stats: &rs})
	if err != nil {
		t.Fatalf("monolithic analysis: %v", err)
	}
	return res, rs
}

func TestSplitInvariants(t *testing.T) {
	data := synthTrace(t, 20000, 1, 512)
	for _, n := range []int{1, 2, 3, 7, 16, 1000} {
		plan, err := Split(data, n, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(plan.Shards) < 1 || len(plan.Shards) > n {
			t.Fatalf("n=%d: got %d shards", n, len(plan.Shards))
		}
		var events uint64
		next := int64(trace.HeaderBytes)
		for i, sh := range plan.Shards {
			if sh.Index != i {
				t.Fatalf("n=%d: shard %d has index %d", n, i, sh.Index)
			}
			if sh.Start != next {
				t.Fatalf("n=%d: shard %d starts at %d, want %d (gap or overlap)", n, i, sh.Start, next)
			}
			if sh.End <= sh.Start && sh.Events > 0 {
				t.Fatalf("n=%d: shard %d has range [%d,%d) but %d events", n, i, sh.Start, sh.End, sh.Events)
			}
			if sh.StartEvent != events {
				t.Fatalf("n=%d: shard %d StartEvent=%d, want %d", n, i, sh.StartEvent, events)
			}
			if (i > 0) != sh.HavePrevSeq {
				t.Fatalf("n=%d: shard %d HavePrevSeq=%v", n, i, sh.HavePrevSeq)
			}
			events += sh.Events
			next = sh.End
		}
		if next != int64(len(data)) {
			t.Fatalf("n=%d: shards end at %d, trace has %d bytes", n, next, len(data))
		}
		if events != plan.TotalEvents {
			t.Fatalf("n=%d: shard events sum to %d, plan says %d", n, events, plan.TotalEvents)
		}
		if plan.TotalEvents != 20000 {
			t.Fatalf("n=%d: plan delivers %d events, wrote 20000", n, plan.TotalEvents)
		}
	}
}

func TestSplitRejectsBadInput(t *testing.T) {
	if _, err := Split(synthTrace(t, 10, 1, 512), 0, Options{}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Split([]byte("PGTRACE1"), 2, Options{}); err == nil {
		t.Error("v1 trace accepted")
	}
	if _, err := Split([]byte("garbage"), 2, Options{}); err == nil {
		t.Error("garbage accepted")
	}
}

func TestShardedEqualsMonolithic(t *testing.T) {
	data := synthTrace(t, 30000, 2, 1024)
	cfg := fullConfig()
	wantRes, wantStats := monolithic(t, data, cfg, false)
	for _, n := range []int{1, 2, 5, 13} {
		res, rs, err := Analyze(context.Background(), data, cfg, n, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(res, wantRes) {
			t.Errorf("n=%d: sharded Result differs from monolithic", n)
		}
		if rs != wantStats {
			t.Errorf("n=%d: ReadStats = %+v, want %+v", n, rs, wantStats)
		}
	}
}

func TestShardedEqualsMonolithicGoverned(t *testing.T) {
	data := synthTrace(t, 30000, 3, 1024)
	cfg := fullConfig()
	cfg.WindowSize = 2048
	cfg.MemBudget = 64 << 10
	cfg.BudgetPolicy = budget.Degrade
	wantRes, wantStats := monolithic(t, data, cfg, false)
	if wantRes.Governor == nil || !wantRes.Governor.Governed() {
		t.Fatal("governed fixture never degraded; tighten the budget")
	}
	for _, n := range []int{1, 3, 7} {
		res, rs, err := Analyze(context.Background(), data, cfg, n, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(res, wantRes) {
			t.Errorf("n=%d: governed sharded Result differs from monolithic", n)
		}
		if rs != wantStats {
			t.Errorf("n=%d: ReadStats differ", n)
		}
	}
}

// damage injects corrupt, duplicated and truncated chunks so degraded
// shard readers must skip, drop and resync exactly as a monolithic
// degraded reader does.
func damage(t testing.TB, data []byte) []byte {
	t.Helper()
	var err error
	for _, i := range []int{2, 9} {
		data, err = faultinject.CorruptChunk(data, i, int64(i))
		if err != nil {
			t.Fatal(err)
		}
	}
	data, err = faultinject.DuplicateChunk(data, 5)
	if err != nil {
		t.Fatal(err)
	}
	return faultinject.Truncate(data, 7)
}

func TestShardedEqualsMonolithicDegraded(t *testing.T) {
	data := damage(t, synthTrace(t, 30000, 4, 1024))
	cfg := fullConfig()
	wantRes, wantStats := monolithic(t, data, cfg, true)
	if wantStats.SkippedChunks == 0 || wantStats.DuplicateChunks == 0 {
		t.Fatalf("damage fixture too mild: %+v", wantStats)
	}
	for _, n := range []int{1, 2, 7} {
		res, rs, err := Analyze(context.Background(), data, cfg, n, Options{Degraded: true})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(res, wantRes) {
			t.Errorf("n=%d: degraded sharded Result differs from monolithic", n)
		}
		if rs != wantStats {
			t.Errorf("n=%d: ReadStats = %+v, want %+v", n, rs, wantStats)
		}
	}
}

// TestDistributedChainThroughFiles simulates the pgshard workflow: each
// shard runs in isolation, seeded from the previous shard's result file,
// and the merged Result — reassembled purely from files — must equal the
// monolithic run. This is the cross-process seam the gob formats exist
// for, including the degraded read's ReadStats surviving the round trip.
func TestDistributedChainThroughFiles(t *testing.T) {
	data := damage(t, synthTrace(t, 20000, 5, 1024))
	cfg := fullConfig()
	wantRes, wantStats := monolithic(t, data, cfg, true)

	plan, err := Split(data, 3, Options{Degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	planPath := filepath.Join(dir, "plan.json")
	if err := SavePlan(planPath, plan); err != nil {
		t.Fatal(err)
	}
	plan, err = LoadPlan(planPath)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	paths := make([]string, len(plan.Shards))
	for i, sh := range plan.Shards {
		// Each iteration stands in for a separate process: state arrives
		// only via the previous shard's result file.
		var a *core.Analyzer
		if i == 0 {
			a = core.NewAnalyzer(cfg)
		} else {
			prev, cp, err := LoadResult(paths[i-1])
			if err != nil {
				t.Fatal(err)
			}
			if cp == nil {
				t.Fatalf("shard %d result carries no checkpoint", i-1)
			}
			if prev.Index != i-1 {
				t.Fatalf("loaded shard %d, want %d", prev.Index, i-1)
			}
			a = cp.Restore()
		}
		buf, err := DecodeShard(ctx, data, sh, plan.Degraded)
		if err != nil {
			t.Fatal(err)
		}
		res, cp, err := RunShard(ctx, a, buf, cfg, sh, len(plan.Shards), i < len(plan.Shards)-1)
		if err != nil {
			t.Fatal(err)
		}
		// The shard's ReadStats must survive the file round trip exactly;
		// this is the gob seam that silently dropped stats before
		// EventBuffer and shard results had explicit encoders.
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard-%d.pgsr", i))
		if err := SaveResult(paths[i], res, cp); err != nil {
			t.Fatal(err)
		}
		loaded, _, err := LoadResult(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		if loaded.ReadStats != res.ReadStats {
			t.Fatalf("shard %d: ReadStats drifted through gob: %+v != %+v", i, loaded.ReadStats, res.ReadStats)
		}
		if !reflect.DeepEqual(loaded, res) {
			t.Fatalf("shard %d: result drifted through gob round trip", i)
		}
	}

	parts := make([]*Result, len(paths))
	for i, p := range paths {
		parts[i], _, err = LoadResult(p)
		if err != nil {
			t.Fatal(err)
		}
	}
	got, rs, err := Merge(parts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, wantRes) {
		t.Error("merged file-chain Result differs from monolithic")
	}
	if rs != wantStats {
		t.Errorf("merged ReadStats = %+v, want %+v", rs, wantStats)
	}
}

func TestMergeValidation(t *testing.T) {
	data := synthTrace(t, 5000, 6, 512)
	cfg := fullConfig()
	plan, err := Split(data, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a := core.NewAnalyzer(cfg)
	parts := make([]*Result, len(plan.Shards))
	for i, sh := range plan.Shards {
		buf, err := DecodeShard(ctx, data, sh, false)
		if err != nil {
			t.Fatal(err)
		}
		parts[i], _, err = RunShard(ctx, a, buf, cfg, sh, len(plan.Shards), false)
		if err != nil {
			t.Fatal(err)
		}
	}

	if _, _, err := Merge(nil); err == nil {
		t.Error("empty merge accepted")
	}
	if _, _, err := Merge(parts[:2]); err == nil {
		t.Error("incomplete shard set accepted")
	}
	if _, _, err := Merge([]*Result{parts[0], parts[1], parts[1]}); err == nil {
		t.Error("duplicate shard accepted")
	}
	bad := *parts[1]
	bad.Config.WindowSize = 999
	if _, _, err := Merge([]*Result{parts[0], &bad, parts[2]}); err == nil {
		t.Error("config mismatch accepted")
	}
	noFinal := *parts[2]
	noFinal.Final = nil
	if _, _, err := Merge([]*Result{parts[0], parts[1], &noFinal}); err == nil {
		t.Error("missing final Result accepted")
	}
	// Shuffled order must merge fine — Merge sorts.
	if _, _, err := Merge([]*Result{parts[2], parts[0], parts[1]}); err != nil {
		t.Errorf("shuffled merge failed: %v", err)
	}
}

func TestRenderMergeSmoke(t *testing.T) {
	data := synthTrace(t, 5000, 7, 512)
	cfg := fullConfig()
	plan, err := Split(data, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	a := core.NewAnalyzer(cfg)
	parts := make([]*Result, len(plan.Shards))
	for i, sh := range plan.Shards {
		buf, err := DecodeShard(ctx, data, sh, false)
		if err != nil {
			t.Fatal(err)
		}
		parts[i], _, err = RunShard(ctx, a, buf, cfg, sh, len(plan.Shards), false)
		if err != nil {
			t.Fatal(err)
		}
	}
	res, rs, err := Merge(parts)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderMerge(&sb, res, rs, parts); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Shard", "critical path", "available"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeMultiSharesDecode(t *testing.T) {
	data := synthTrace(t, 10000, 8, 1024)
	cfgs := []core.Config{fullConfig(), core.Dataflow(core.SyscallConservative)}
	cfgs[1].WindowSize = 128
	results, _, err := AnalyzeMulti(context.Background(), data, cfgs, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		want, _ := monolithic(t, data, cfg, false)
		if !reflect.DeepEqual(results[i], want) {
			t.Errorf("config %d: multi-config sharded Result differs from monolithic", i)
		}
	}
}

func TestAnalyzeCancellation(t *testing.T) {
	data := synthTrace(t, 30000, 9, 1024)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Analyze(ctx, data, fullConfig(), 4, Options{}); err == nil {
		t.Error("canceled context did not abort sharded analysis")
	}
}
