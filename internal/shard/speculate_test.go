package shard

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"paragraph/internal/budget"
	"paragraph/internal/core"
)

// speculativeConfigs is the matrix the speculative differentials sweep: the
// full-collection config, the zero config (storage dependencies
// everywhere), branchy and governed variants.
func speculativeConfigs() []core.Config {
	full := fullConfig()
	branchy := core.Config{Branches: core.BranchTwoBit, PredictorBits: 6, Lifetimes: true, Sharing: true}
	windowed := core.Dataflow(core.SyscallOptimistic)
	windowed.WindowSize = 256
	governed := fullConfig()
	governed.WindowSize = 4096
	governed.MemBudget = 96 << 10
	governed.BudgetPolicy = budget.Degrade
	return []core.Config{full, {}, branchy, windowed, governed}
}

// TestSpeculativeEqualsMonolithic: speculative N-shard analysis of a clean
// trace is deep-equal to the monolithic run for every config in the matrix,
// including a budget-governed one whose window degrades mid-trace.
func TestSpeculativeEqualsMonolithic(t *testing.T) {
	data := synthTrace(t, 30000, 11, 1024)
	for ci, cfg := range speculativeConfigs() {
		wantRes, wantStats := monolithic(t, data, cfg, false)
		for _, n := range []int{1, 2, 5, 13} {
			res, rs, err := Analyze(context.Background(), data, cfg, n, Options{Speculate: true})
			if err != nil {
				t.Fatalf("config %d n=%d: %v", ci, n, err)
			}
			if !reflect.DeepEqual(res, wantRes) {
				t.Errorf("config %d n=%d: speculative Result differs from monolithic", ci, n)
			}
			if rs != wantStats {
				t.Errorf("config %d n=%d: ReadStats = %+v, want %+v", ci, n, rs, wantStats)
			}
		}
	}
}

// TestSpeculativeEqualsMonolithicDegraded: same pin over a damaged trace
// read in degraded mode — skipped, duplicated and truncated chunks land in
// specific shards, and the splice must still be exact.
func TestSpeculativeEqualsMonolithicDegraded(t *testing.T) {
	data := damage(t, synthTrace(t, 30000, 12, 1024))
	cfg := fullConfig()
	wantRes, wantStats := monolithic(t, data, cfg, true)
	if wantStats.SkippedChunks == 0 || wantStats.DuplicateChunks == 0 {
		t.Fatalf("damage fixture too mild: %+v", wantStats)
	}
	for _, n := range []int{1, 3, 8} {
		res, rs, err := Analyze(context.Background(), data, cfg, n, Options{Degraded: true, Speculate: true})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(res, wantRes) {
			t.Errorf("n=%d: degraded speculative Result differs from monolithic", n)
		}
		if rs != wantStats {
			t.Errorf("n=%d: ReadStats = %+v, want %+v", n, rs, wantStats)
		}
	}
}

// TestSpeculativeEqualsChained: the speculative and chained drivers agree
// on a multi-config fan-out — same Results, same ReadStats — so Speculate
// is a pure engine switch.
func TestSpeculativeEqualsChained(t *testing.T) {
	data := synthTrace(t, 25000, 13, 1024)
	cfgs := speculativeConfigs()
	chained, crs, err := AnalyzeMulti(context.Background(), data, cfgs, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec, srs, err := AnalyzeMulti(context.Background(), data, cfgs, 6, Options{Speculate: true})
	if err != nil {
		t.Fatal(err)
	}
	if crs != srs {
		t.Errorf("ReadStats: chained %+v, speculative %+v", crs, srs)
	}
	for i := range cfgs {
		if !reflect.DeepEqual(chained[i], spec[i]) {
			t.Errorf("config %d: speculative Result differs from chained", i)
		}
	}
}

// TestSpeculativeBudgetErrorParity: when a fail-fast budget trips, the
// speculative driver reports the same failure the chained driver reports —
// same config index, same shard, same analyzer error (event and cause).
// Only the delivery wrapper differs: the chained engine surfaces errors
// through batch replay ("trace: replay batch at event N"), the splice
// applies records directly, so parity is pinned on the prefix and the
// "core: ..." suffix rather than the full string.
func TestSpeculativeBudgetErrorParity(t *testing.T) {
	data := synthTrace(t, 30000, 14, 1024)
	cfg := core.Config{MemBudget: 16 << 10, BudgetPolicy: budget.FailFast}
	_, _, cerr := Analyze(context.Background(), data, cfg, 4, Options{})
	if cerr == nil {
		t.Fatal("chained run stayed under a 16KB budget")
	}
	_, _, serr := Analyze(context.Background(), data, cfg, 4, Options{Speculate: true})
	if serr == nil {
		t.Fatal("speculative run stayed under a 16KB budget")
	}
	coreOf := func(err error) string {
		s := err.Error()
		i := strings.Index(s, "core:")
		if i < 0 {
			t.Fatalf("error %q carries no analyzer error", s)
		}
		return s[i:]
	}
	if coreOf(serr) != coreOf(cerr) {
		t.Errorf("speculative analyzer error %q, want chained's %q", coreOf(serr), coreOf(cerr))
	}
	const at = "config 0: shard 0:"
	if !strings.HasPrefix(serr.Error(), at) || !strings.HasPrefix(cerr.Error(), at) {
		t.Errorf("errors disagree on the failing config/shard:\n  chained:     %v\n  speculative: %v", cerr, serr)
	}
	if !strings.Contains(serr.Error(), "budget") {
		t.Errorf("error %q does not mention the budget", serr)
	}
}

// TestSpliceThroughFiles simulates the distributed speculative workflow:
// every shard's delta is built independently (no predecessor, so the
// per-shard processes could run concurrently on different machines),
// persisted, reloaded, and spliced. The merged Result must equal the
// monolithic run and the per-shard Results must equal what the chained
// file workflow persists.
func TestSpliceThroughFiles(t *testing.T) {
	data := damage(t, synthTrace(t, 20000, 15, 1024))
	cfg := fullConfig()
	wantRes, wantStats := monolithic(t, data, cfg, true)

	plan, err := Split(data, 3, Options{Degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	dir := t.TempDir()

	// Chained per-shard results, for the part-by-part comparison.
	chainedParts := make([]*Result, len(plan.Shards))
	a := core.NewAnalyzer(cfg)
	for i, sh := range plan.Shards {
		buf, err := DecodeShard(ctx, data, sh, plan.Degraded)
		if err != nil {
			t.Fatal(err)
		}
		chainedParts[i], _, err = RunShard(ctx, a, buf, cfg, sh, len(plan.Shards), false)
		if err != nil {
			t.Fatal(err)
		}
	}

	paths := make([]string, len(plan.Shards))
	for i, sh := range plan.Shards {
		buf, err := DecodeShard(ctx, data, sh, plan.Degraded)
		if err != nil {
			t.Fatal(err)
		}
		d, err := BuildShardDelta(ctx, buf, cfg, sh)
		if err != nil {
			t.Fatal(err)
		}
		paths[i] = filepath.Join(dir, "shard-"+string(rune('0'+i))+".pgsd")
		err = SaveDelta(paths[i], &Delta{
			Index: sh.Index, Shards: len(plan.Shards),
			Config: cfg, ReadStats: buf.Stats(), D: d,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	loaded := make([]*Delta, len(paths))
	for i, p := range paths {
		if loaded[i], err = LoadDelta(p); err != nil {
			t.Fatal(err)
		}
	}
	// Splice sorts by index itself; hand the deltas over shuffled.
	loaded[0], loaded[len(loaded)-1] = loaded[len(loaded)-1], loaded[0]

	parts, res, rs, err := Splice(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, wantRes) {
		t.Error("spliced Result differs from monolithic")
	}
	if rs != wantStats {
		t.Errorf("spliced ReadStats = %+v, want %+v", rs, wantStats)
	}
	for i := range parts {
		if !reflect.DeepEqual(parts[i], chainedParts[i]) {
			t.Errorf("shard %d: spliced per-shard Result differs from chained", i)
		}
	}
}

// TestSpliceValidation: incomplete or inconsistent delta chains are
// refused with errors naming the offending shard.
func TestSpliceValidation(t *testing.T) {
	data := synthTrace(t, 4000, 16, 512)
	cfg := core.Config{}
	plan, err := Split(data, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Shards) != 2 {
		t.Skipf("trace split into %d shards, want 2", len(plan.Shards))
	}
	ctx := context.Background()
	ds := make([]*Delta, 2)
	for i, sh := range plan.Shards {
		buf, err := DecodeShard(ctx, data, sh, false)
		if err != nil {
			t.Fatal(err)
		}
		d, err := BuildShardDelta(ctx, buf, cfg, sh)
		if err != nil {
			t.Fatal(err)
		}
		ds[i] = &Delta{Index: sh.Index, Shards: 2, Config: cfg, ReadStats: buf.Stats(), D: d}
	}

	if _, _, _, err := Splice(nil); err == nil {
		t.Error("empty chain accepted")
	}
	if _, _, _, err := Splice(ds[:1]); err == nil {
		t.Error("incomplete chain accepted")
	}
	if _, _, _, err := Splice([]*Delta{ds[0], ds[0]}); err == nil {
		t.Error("duplicate shard accepted")
	}
	other := *ds[1]
	other.Config = core.Dataflow(core.SyscallOptimistic)
	if _, _, _, err := Splice([]*Delta{ds[0], &other}); err == nil {
		t.Error("mismatched configs accepted")
	}
}

// TestDeltaFileFormat: the delta file magic is validated and result files
// are not mistaken for delta files.
func TestDeltaFileFormat(t *testing.T) {
	if _, err := ReadDelta(bytes.NewReader([]byte("pgshard-result-v1\nxx"))); err == nil ||
		!strings.Contains(err.Error(), "not a shard-delta file") {
		t.Errorf("result magic accepted as delta: %v", err)
	}
	if _, err := ReadDelta(bytes.NewReader(nil)); err == nil {
		t.Error("empty file accepted")
	}
}
