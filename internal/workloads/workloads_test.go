package workloads

import (
	"strings"
	"testing"

	"paragraph/internal/minic"
	"paragraph/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("registry has %d workloads, want 10", len(all))
	}
	originals := map[string]bool{}
	for _, w := range all {
		if w.Name == "" || w.Original == "" || w.Description == "" || w.Source == nil {
			t.Errorf("workload %+v incomplete", w)
		}
		originals[w.Original] = true
	}
	for _, o := range []string{
		"cc1", "doduc", "eqntott", "espresso", "fpppp",
		"matrix300", "nasker", "spice2g6", "tomcatv", "xlisp",
	} {
		if !originals[o] {
			t.Errorf("missing analogue for %s", o)
		}
	}
}

func TestByName(t *testing.T) {
	if w, ok := ByName("matrixx"); !ok || w.Original != "matrix300" {
		t.Errorf("ByName(matrixx) = %v, %v", w, ok)
	}
	if w, ok := ByName("xlisp"); !ok || w.Name != "xlispx" {
		t.Errorf("ByName by original failed: %v, %v", w, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted unknown name")
	}
}

// TestAllWorkloadsRun executes every workload at scale 1 and checks it
// terminates cleanly with plausible output and trace length.
func TestAllWorkloadsRun(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			var count trace.Counter
			res, err := w.Run(1, minic.Options{}, &count, 100_000_000)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !strings.HasPrefix(res.Output, w.Name+" ") {
				t.Errorf("output = %q, want prefix %q", res.Output, w.Name)
			}
			if !strings.HasSuffix(res.Output, "\n") {
				t.Errorf("output not newline-terminated: %q", res.Output)
			}
			if res.Instructions < 50_000 {
				t.Errorf("only %d instructions at scale 1; too small to be interesting", res.Instructions)
			}
			if res.Instructions > 20_000_000 {
				t.Errorf("%d instructions at scale 1; too big for sweep experiments", res.Instructions)
			}
			if count.N != res.Instructions {
				t.Errorf("trace events %d != instructions %d", count.N, res.Instructions)
			}
			if res.ExitCode != 0 {
				t.Errorf("exit code = %d", res.ExitCode)
			}
			t.Logf("%s: %d instructions, output %q", w.Name, res.Instructions, strings.TrimSpace(res.Output))
		})
	}
}

// TestDeterminism: two runs produce identical traces and outputs.
func TestDeterminism(t *testing.T) {
	w, _ := ByName("spicex")
	run := func() (string, uint64) {
		var count trace.Counter
		res, err := w.Run(1, minic.Options{}, &count, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Output, count.N
	}
	out1, n1 := run()
	out2, n2 := run()
	if out1 != out2 || n1 != n2 {
		t.Errorf("nondeterministic: (%q, %d) vs (%q, %d)", out1, n1, out2, n2)
	}
}

// TestScaleGrowsTrace: scale 2 must execute roughly twice the instructions
// of scale 1.
func TestScaleGrowsTrace(t *testing.T) {
	w, _ := ByName("naskerx")
	r1, err := w.Run(1, minic.Options{}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := w.Run(2, minic.Options{}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(r2.Instructions) / float64(r1.Instructions)
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("scale-2/scale-1 instruction ratio = %.2f, want ~2", ratio)
	}
}

// TestUnrollingPreservesOutput: the E7 ablation relies on unrolled
// workloads computing identical results.
func TestUnrollingPreservesOutput(t *testing.T) {
	for _, name := range []string{"matrixx", "naskerx"} {
		w, _ := ByName(name)
		plain, err := w.Run(1, minic.Options{}, nil, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		unrolled, err := w.Run(1, minic.Options{Unroll: 4}, nil, 0)
		if err != nil {
			t.Fatalf("%s unrolled: %v", name, err)
		}
		if plain.Output != unrolled.Output {
			t.Errorf("%s: unrolled output %q != plain %q", name, unrolled.Output, plain.Output)
		}
	}
}

// TestMaxInstrLimit: the instruction budget truncates long runs, matching
// the paper's "at most 100,000,000 instructions were traced".
func TestMaxInstrLimit(t *testing.T) {
	w, _ := ByName("cc1x")
	res, err := w.Run(1, minic.Options{}, nil, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 10_000 {
		t.Errorf("executed %d, want exactly the 10,000 budget", res.Instructions)
	}
}

// TestGoldenOutputs: each workload's scale-1 output matches its recorded
// golden value — the numerical results of the benchmarks themselves are
// part of the reproduction's contract (deterministic arithmetic through
// the compiler, assembler, and simulator).
func TestGoldenOutputs(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if w.ExpectOutput == "" {
				t.Fatalf("%s has no golden output recorded", w.Name)
			}
			res, err := w.Run(1, minic.Options{}, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Output != w.ExpectOutput {
				t.Errorf("output %q, want %q", res.Output, w.ExpectOutput)
			}
		})
	}
}
