package workloads

import "fmt"

// cc1x models cc1 (GCC compiling explow.i): a compiler front end spends its
// time scanning characters, hashing identifiers into symbol tables, and
// walking tree structures. Those activities produce irregular control flow
// and pointer-chasing-style serial chains broken up by independent
// per-token work — the paper measured cc1 at a modest 36x parallelism with
// a long critical path.
func cc1xSource(scale int) string {
	return fmt.Sprintf(`
// cc1x: scanner + symbol table + tree walk (models cc1)
int text[4096];
int textLen = 0;
int htabKey[1024];
int htabCount[1024];
int treeVal[2048];
int treeLeft[2048];
int treeRight[2048];
int treeN = 0;

// Synthesize "source text": identifiers, numbers, operators.
void gentext(int seed) {
    int i;
    int s = seed;
    textLen = 0;
    for (i = 0; i < 4000; i = i + 1) {
        s = (s * 1103515245 + 12345) & 0x7fffffff;
        int r = s %% 100;
        int c;
        if (r < 55) {
            c = 97 + s %% 26;          // a-z
        } else {
            if (r < 80) { c = 48 + s %% 10; }   // 0-9
            else {
                if (r < 90) { c = 43; }          // '+'
                else {
                    if (r < 97) { c = 32; }      // space
                    else { c = 59; }             // ';'
                }
            }
        }
        text[textLen] = c;
        textLen = textLen + 1;
    }
}

int hashInsert(int key) {
    int h = key %% 1024;
    if (h < 0) { h = h + 1024; }
    while (htabKey[h] != 0 && htabKey[h] != key) {
        h = (h + 1) %% 1024;
    }
    htabKey[h] = key;
    htabCount[h] = htabCount[h] + 1;
    return htabCount[h];
}

int buildTree(int lo, int hi) {
    if (lo > hi) { return -1; }
    int mid = (lo + hi) / 2;
    int node = treeN;
    treeN = treeN + 1;
    treeVal[node] = text[mid];
    treeLeft[node] = buildTree(lo, mid - 1);
    treeRight[node] = buildTree(mid + 1, hi);
    return node;
}

int sumTree(int node) {
    if (node < 0) { return 0; }
    return treeVal[node] + sumTree(treeLeft[node]) + sumTree(treeRight[node]);
}

int main() {
    int pass;
    int idents = 0;
    int numbers = 0;
    int ops = 0;
    int checksum = 0;
    for (pass = 0; pass < %d; pass = pass + 1) {
        gentext(pass * 7919 + 13);
        int i = 0;
        while (i < textLen) {
            int c = text[i];
            if (c >= 97 && c <= 122) {
                int key = 0;
                while (i < textLen && text[i] >= 97 && text[i] <= 122) {
                    key = key * 31 + text[i];
                    i = i + 1;
                }
                idents = idents + 1;
                checksum = checksum + hashInsert(key | 1);
            } else {
                if (c >= 48 && c <= 57) {
                    int v = 0;
                    while (i < textLen && text[i] >= 48 && text[i] <= 57) {
                        v = v * 10 + (text[i] - 48);
                        i = i + 1;
                    }
                    numbers = numbers + 1;
                    checksum = checksum ^ v;
                } else {
                    if (c == 43) { ops = ops + 1; }
                    i = i + 1;
                }
            }
        }
        treeN = 0;
        int root = buildTree(0, 255);
        checksum = checksum + sumTree(root);
    }
    print_str("cc1x ");
    print_int(idents); print_char(32);
    print_int(numbers); print_char(32);
    print_int(ops); print_char(32);
    print_int(checksum & 0xffff);
    print_char(10);
    return 0;
}
`, 2*scale)
}

// eqntottx models eqntott (boolean equation to truth table conversion):
// the original spends nearly all its time in a quicksort whose comparator
// walks bit-vector truth tables word by word. The word-level compare loops
// across many independent vector pairs are what gave eqntott its high
// (782x) measured parallelism.
func eqntottxSource(scale int) string {
	return fmt.Sprintf(`
// eqntottx: bit-vector truth table sorting (models eqntott)
int vec[64][8];
int rank[64];
int perm[64];
int nvec = 64;

void genvecs(int seed) {
    int i;
    int j;
    for (i = 0; i < nvec; i = i + 1) {
        for (j = 0; j < 8; j = j + 1) {
            // Counter-based hash: table entries are independent, like
            // rows parsed from an input file.
            int h = (seed + i * 8 + j) * 0x9E3779B1;
            h = (h ^ (h >> 15)) & 0x7fffffff;
            vec[i][j] = h & 0xffff;
        }
        rank[i] = 0;
    }
}

// cmppt: lexicographic comparison of two truth tables (the original's
// hot comparator).
int cmppt(int a, int b) {
    int j;
    for (j = 0; j < 8; j = j + 1) {
        int x = vec[a][j];
        int y = vec[b][j];
        if (x < y) { return -1; }
        if (x > y) { return 1; }
    }
    return 0;
}

// Rank sort: every pairwise comparison is independent, which is where
// eqntott's high measured parallelism came from.
void sortvecs() {
    int i;
    int j;
    for (i = 0; i < nvec; i = i + 1) {
        for (j = 0; j < nvec; j = j + 1) {
            if (i != j) {
                int c = cmppt(j, i);
                if (c < 0) { rank[i] = rank[i] + 1; }
                else {
                    if (c == 0 && j < i) { rank[i] = rank[i] + 1; }
                }
            }
        }
    }
    for (i = 0; i < nvec; i = i + 1) {
        perm[rank[i]] = i;
    }
}

int main() {
    int pass;
    int dups = 0;
    int checksum = 0;
    for (pass = 0; pass < %d; pass = pass + 1) {
        genvecs(pass * 31 + 7);
        sortvecs();
        int i;
        for (i = 1; i < nvec; i = i + 1) {
            if (cmppt(perm[i-1], perm[i]) == 0) { dups = dups + 1; }
            checksum = checksum + vec[perm[i]][0];
        }
    }
    print_str("eqntottx ");
    print_int(dups); print_char(32);
    print_int(checksum & 0xffff);
    print_char(10);
    return 0;
}
`, 3*scale)
}

// espressox models espresso (PLA minimization): set operations — AND, OR,
// containment tests — over wide bit-vector "cubes". Row operations are
// independent across cube pairs, giving the moderate (133x) parallelism of
// the original, and almost everything lives in non-stack memory, which is
// why espresso needs memory renaming to reach it (Table 4).
func espressoxSource(scale int) string {
	return fmt.Sprintf(`
// espressox: cube cover operations (models espresso)
int cover[48][6];
int weight[48];
int ncubes = 48;
int tmp[6];
// Running cost total, kept in memory as the original kept its cost
// fields inside heap structures. The read-modify-write chain through this
// word is what memory renaming must break to expose the parallelism
// across minimization passes (the paper's espresso row in Table 4).
int gtotal = 0;

void gencover(int seed) {
    int i;
    int j;
    for (i = 0; i < ncubes; i = i + 1) {
        for (j = 0; j < 6; j = j + 1) {
            int h = (seed + i * 6 + j) * 0x9E3779B1;
            h = (h ^ (h >> 15)) & 0x7fffffff;
            cover[i][j] = h & 0x3ffff;
        }
        weight[i] = 0;
    }
}

// contains: does cube a cover cube b (a's bits are a superset)?
int contains(int a, int b) {
    int j;
    for (j = 0; j < 6; j = j + 1) {
        if ((cover[a][j] | cover[b][j]) != cover[a][j]) { return 0; }
    }
    return 1;
}

// distance: number of conflicting parts between two cubes. The popcount
// is open-coded (the original used macros), keeping this a leaf routine.
int distance(int a, int b) {
    int d = 0;
    int j;
    for (j = 0; j < 6; j = j + 1) {
        int x = cover[a][j] & cover[b][j];
        while (x != 0) {
            d = d + (x & 1);
            x = x >> 1;
        }
    }
    return d;
}

int pcov[16];
int pdist[16];

int main() {
    int pass;
    int npass = %d;
    for (pass = 0; pass < npass; pass = pass + 1) {
        gencover(pass * 131 + 3);
        int covered = 0;
        int i;
        int j;
        gtotal = 0;
        for (i = 0; i < ncubes; i = i + 1) {
            for (j = 0; j < ncubes; j = j + 1) {
                if (i != j) {
                    if (contains(i, j)) { covered = covered + 1; }
                    int dd = distance(i, j);
                    gtotal = gtotal + dd;
                    // Per-cube weights accumulate in memory, as the
                    // original's cost counters did.
                    weight[i] = weight[i] + dd;
                }
            }
        }
        // Consensus pass: merge adjacent cubes into tmp.
        for (i = 0; i + 1 < ncubes; i = i + 1) {
            for (j = 0; j < 6; j = j + 1) {
                tmp[j] = cover[i][j] | cover[i+1][j];
            }
            for (j = 0; j < 6; j = j + 1) {
                cover[i][j] = tmp[j] & 0x3ffff;
            }
        }
        int wmax = 0;
        for (i = 0; i < ncubes; i = i + 1) {
            if (weight[i] > wmax) { wmax = weight[i]; }
        }
        pcov[pass %% 16] = covered + wmax;
        pdist[pass %% 16] = gtotal;
    }
    int covered = 0;
    int totaldist = 0;
    int k;
    for (k = 0; k < 16; k = k + 1) {
        covered = covered + pcov[k];
        totaldist = totaldist + pdist[k];
    }
    print_str("espressox ");
    print_int(covered); print_char(32);
    print_int(totaldist & 0xffff);
    print_char(10);
    return 0;
}
`, 3*scale)
}

// xlispx models xlisp interpreting li-input.lsp: the paper found xlisp to
// be the least parallel benchmark (13x) because the Lisp program ran in a
// prog construct — an interpreted abstract serial machine whose virtual
// program counter is a recurrence the analyzer cannot remove. This
// workload is exactly that mechanism: a bytecode VM whose fetch-decode
// loop serializes on the virtual pc and stack pointer.
func xlispxSource(scale int) string {
	return fmt.Sprintf(`
// xlispx: stack-machine bytecode interpreter (models xlisp's prog loop)
int code[64];
int stk[64];
int mem[16];

// Opcodes: 1 PUSH k; 2 ADD; 3 SUB; 4 MUL; 5 LOAD a; 6 STORE a;
// 7 JNZ t (pops condition); 9 HALT.
void assemble(int n) {
    code[0] = 1;  code[1] = n;    // PUSH n
    code[2] = 6;  code[3] = 0;    // STORE m0      (counter)
    code[4] = 1;  code[5] = 0;    // PUSH 0
    code[6] = 6;  code[7] = 1;    // STORE m1      (sum)
    // loop:
    code[8] = 5;  code[9] = 0;    // LOAD m0
    code[10] = 5; code[11] = 0;   // LOAD m0
    code[12] = 4;                 // MUL
    code[13] = 5; code[14] = 1;   // LOAD m1
    code[15] = 2;                 // ADD
    code[16] = 6; code[17] = 1;   // STORE m1
    code[18] = 5; code[19] = 0;   // LOAD m0
    code[20] = 1; code[21] = 1;   // PUSH 1
    code[22] = 3;                 // SUB
    code[23] = 6; code[24] = 0;   // STORE m0
    code[25] = 5; code[26] = 0;   // LOAD m0
    code[27] = 7; code[28] = 8;   // JNZ loop
    code[29] = 9;                 // HALT
}

int interpret() {
    int pc = 0;
    int sp = 0;
    int steps = 0;
    int running = 1;
    while (running) {
        int op = code[pc];
        pc = pc + 1;
        steps = steps + 1;
        if (op == 1) {
            stk[sp] = code[pc];
            pc = pc + 1;
            sp = sp + 1;
        } else { if (op == 2) {
            sp = sp - 1;
            stk[sp-1] = stk[sp-1] + stk[sp];
        } else { if (op == 3) {
            sp = sp - 1;
            stk[sp-1] = stk[sp-1] - stk[sp];
        } else { if (op == 4) {
            sp = sp - 1;
            stk[sp-1] = stk[sp-1] * stk[sp];
        } else { if (op == 5) {
            stk[sp] = mem[code[pc]];
            pc = pc + 1;
            sp = sp + 1;
        } else { if (op == 6) {
            sp = sp - 1;
            mem[code[pc]] = stk[sp];
            pc = pc + 1;
        } else { if (op == 7) {
            sp = sp - 1;
            if (stk[sp] != 0) { pc = code[pc]; }
            else { pc = pc + 1; }
        } else {
            running = 0;
        } } } } } } }
    }
    return steps;
}

int main() {
    int pass;
    int steps = 0;
    int result = 0;
    for (pass = 0; pass < %d; pass = pass + 1) {
        assemble(300);
        steps = steps + interpret();
        result = mem[1];
    }
    print_str("xlispx ");
    print_int(steps); print_char(32);
    print_int(result);
    print_char(10);
    return 0;
}
`, scale)
}

func init() {
	register(&Workload{
		Name: "cc1x", Original: "cc1", Language: "C", BenchType: "Int",
		Description:  "scanner, symbol-table hashing and tree walking, as in a compiler front end",
		Source:       cc1xSource,
		ExpectOutput: "cc1x 1973 1498 783 10694\n",
	})
	register(&Workload{
		Name: "eqntottx", Original: "eqntott", Language: "C", BenchType: "Int",
		Description:  "bit-vector truth-table comparison sort (the original's cmppt/qsort hot loop)",
		Source:       eqntottxSource,
		ExpectOutput: "eqntottx 0 62515\n",
	})
	register(&Workload{
		Name: "espressox", Original: "espresso", Language: "C", BenchType: "Int",
		Description:  "set-cover bit-matrix operations over PLA cubes",
		Source:       espressoxSource,
		ExpectOutput: "espressox 4610 42648\n",
	})
	register(&Workload{
		Name: "xlispx", Original: "xlisp", Language: "C", BenchType: "Int",
		Description:  "bytecode interpreter whose virtual-PC recurrence serializes execution",
		Source:       xlispxSource,
		ExpectOutput: "xlispx 3605 9045050\n",
	})
}
