// Package workloads provides the ten benchmark programs used to reproduce
// the paper's SPEC'89 evaluation. Each workload is a MiniC program
// engineered to exhibit the dependency character of its SPEC original —
// the property the paper's results actually hinge on — since the original
// benchmarks, inputs, and MIPS compiler are not reproducible here.
//
// The mapping (see DESIGN.md §5 for the full rationale):
//
//	cc1x      ~ cc1        token scanning, hashing, tree walking (int)
//	doducx    ~ doduc      Monte-Carlo-style FP kernel with accumulators
//	eqntottx  ~ eqntott    bit-vector truth-table comparison and sorting
//	espressox ~ espresso   set cover over bit matrices (int)
//	fppppx    ~ fpppp      huge straight-line FP expression blocks
//	matrixx   ~ matrix300  dense matrix multiply on stack arrays (FP)
//	naskerx   ~ nasker     FP kernels dominated by loop recurrences
//	spicex    ~ spice2g6   sparse solve + device evaluation (int and FP)
//	tomcatvx  ~ tomcatv    2-D mesh relaxation on stack arrays (FP)
//	xlispx    ~ xlisp      bytecode interpreter (virtual-PC recurrence)
//
// Every workload is parameterized by an integer scale; Scale 1 produces a
// trace in the hundreds of thousands of dynamic instructions, sized so the
// whole suite sweeps (Tables 3-4, Figures 7-8) run in seconds. Larger
// scales approach the paper's 100M-instruction traces at proportional cost.
package workloads

import (
	"bytes"
	"fmt"
	"sort"

	"paragraph/internal/asm"
	"paragraph/internal/cpu"
	"paragraph/internal/minic"
	"paragraph/internal/trace"
)

// Workload is one SPEC-analogue benchmark.
type Workload struct {
	// Name is the analogue's name (e.g. "matrixx").
	Name string
	// Original is the SPEC'89 benchmark it models (e.g. "matrix300").
	Original string
	// Language records the original's source language, as in the
	// paper's Table 2.
	Language string
	// BenchType is "Int", "FP", or "Int and FP", as in Table 2.
	BenchType string
	// Description summarizes the dependency character being modelled.
	Description string
	// Source generates the MiniC program at a given scale (>= 1).
	Source func(scale int) string
	// ExpectOutput, when non-empty, is the exact output of the scale-1
	// program; used by integration tests to validate the workload
	// computes what it claims.
	ExpectOutput string
}

var registry []*Workload

func register(w *Workload) { registry = append(registry, w) }

// All returns every workload in the paper's Table-2 order.
func All() []*Workload {
	out := append([]*Workload(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Original < out[j].Original })
	return out
}

// ByName finds a workload by analogue or original name.
func ByName(name string) (*Workload, bool) {
	for _, w := range registry {
		if w.Name == name || w.Original == name {
			return w, true
		}
	}
	return nil, false
}

// Build compiles the workload at the given scale.
func (w *Workload) Build(scale int, opts minic.Options) (*asm.Program, error) {
	if scale < 1 {
		scale = 1
	}
	prog, err := minic.Build(w.Source(scale), opts)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return prog, nil
}

// RunResult reports a traced execution.
type RunResult struct {
	Instructions uint64
	Output       string
	ExitCode     int
}

// Run executes the workload, streaming its trace to sink (which may be
// nil). maxInstr of 0 means unlimited.
func (w *Workload) Run(scale int, opts minic.Options, sink trace.Sink, maxInstr uint64) (*RunResult, error) {
	prog, err := w.Build(scale, opts)
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	cpuOpts := []cpu.Option{cpu.WithStdout(&out)}
	if sink != nil {
		cpuOpts = append(cpuOpts, cpu.WithTrace(sink))
	}
	machine, err := cpu.New(prog, cpuOpts...)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	n, err := machine.Run(maxInstr)
	if err != nil && err != cpu.ErrLimit {
		return nil, fmt.Errorf("workload %s: %w (output %q)", w.Name, err, out.String())
	}
	_, code := machine.Exited()
	return &RunResult{Instructions: n, Output: out.String(), ExitCode: code}, nil
}
