package workloads

import (
	"fmt"
	"strings"
)

// doducx models doduc (Monte-Carlo simulation of a nuclear reactor
// component): per-particle floating-point transformation chains that are
// independent across particles, funnelled into a handful of accumulator
// recurrences. The original measured ~104x available parallelism, almost
// all of it recoverable by register renaming alone (Table 4).
func doducxSource(scale int) string {
	return fmt.Sprintf(`
// doducx: per-particle FP chains + shared accumulators (models doduc)
double absorbed = 0.0;
double scattered = 0.0;
double leaked = 0.0;

int main() {
    int p;
    for (p = 0; p < %d; p = p + 1) {
        // Counter-based pseudo-random draw: particles are independent,
        // as the original's per-particle histories were.
        int s = (p * 0x9E3779B1 + 0x7F4A7C15) & 0x7fffffff;
        s = (s ^ (s >> 13)) & 0x7fffffff;
        double u = s;
        u = u / 2147483647.0;
        // Energy transformation chain: polynomial "cross sections".
        double e = 1.0 + u * 9.0;
        double sigma = 0.45 + e * (0.021 + e * (0.0013 + e * 0.00007));
        double path = 1.0 / sigma;
        double w = 1.0;
        int bounce;
        for (bounce = 0; bounce < 6; bounce = bounce + 1) {
            double t = path * (0.5 + u * 0.5);
            e = e * 0.84 + t * 0.02;
            sigma = 0.45 + e * (0.021 + e * 0.0013);
            path = 1.0 / sigma;
            w = w * 0.93;
        }
        if (e < 2.0) { absorbed = absorbed + w; }
        else {
            if (e < 6.0) { scattered = scattered + w * 0.5; }
            else { leaked = leaked + w * 0.25; }
        }
    }
    print_str("doducx ");
    print_double(absorbed); print_char(32);
    print_double(scattered); print_char(32);
    print_double(leaked);
    print_char(10);
    return 0;
}
`, 2500*scale)
}

// fppppx models fpppp (Gaussian two-electron integral evaluation): the
// original's hot code is enormous straight-line basic blocks of FP
// arithmetic with few branches, giving the highest FP density and ~2000x
// parallelism. The source below is generated with wide blocks of mostly
// independent FP expressions whose results land in distinct array slots,
// so successive blocks overlap almost completely in the DDG.
func fppppxSource(scale int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `
// fppppx: wide straight-line FP blocks (models fpppp)
double in[64];
double out[2048];

int main() {
    int i;
    for (i = 0; i < 64; i = i + 1) {
        in[i] = 0.5 + i * 0.03125;
    }
    int blk;
    for (blk = 0; blk < %d; blk = blk + 1) {
        int base = (blk * 16) %% 2032;
`, 384*scale)
	// One wide block: 16 independent chains, each a short polynomial of
	// distinct inputs, written to distinct outputs.
	for k := 0; k < 16; k++ {
		i1 := (k * 3) % 64
		i2 := (k*7 + 5) % 64
		i3 := (k*11 + 9) % 64
		fmt.Fprintf(&b, "        double t%d = in[%d] * in[%d] + in[%d] * %g;\n",
			k, i1, i2, i3, 0.25+float64(k)*0.0625)
		fmt.Fprintf(&b, "        t%d = t%d * in[%d] + t%d * t%d - %g;\n",
			k, k, (i1+i2)%64, k, k, 0.125*float64(k+1))
		fmt.Fprintf(&b, "        out[base + %d] = t%d / (in[%d] + 2.0);\n", k, k, i3)
	}
	b.WriteString(`    }
    // Sampled checksum with four interleaved partial sums, so the final
    // reduction does not dominate the critical path (fpppp itself has no
    // global reduction).
    double s0 = 0.0;
    double s1 = 0.0;
    double s2 = 0.0;
    double s3 = 0.0;
    for (i = 0; i < 128; i = i + 4) {
        s0 = s0 + out[i * 16];
        s1 = s1 + out[i * 16 + 16];
        s2 = s2 + out[i * 16 + 32];
        s3 = s3 + out[i * 16 + 48];
    }
    print_str("fppppx ");
    print_double(s0 + s1 + s2 + s3);
    print_char(10);
    return 0;
}
`)
	return b.String()
}

// matrixx models matrix300 (dense 300x300 matrix multiply): SAXPY inner
// loops over arrays allocated on the stack, as the FORTRAN original
// allocated its matrices. The paper's headline result — 23,302x available
// parallelism, nearly none of it visible until stack memory is renamed
// (Table 4: 1,235x with registers renamed, 23,302x with stack renamed) —
// comes from the N^2 independent dot products living entirely in memory.
// The matrices here are 20x20 to respect MiniC's 32 KB frame limit; the
// dependency structure per element is identical.
func matrixxSource(scale int) string {
	return fmt.Sprintf(`
// matrixx: stack-allocated dense matrix multiply (models matrix300)
int main() {
    double a[20][20];
    double b[20][20];
    double c[20][20];
    // Partial-sum accumulators for the four-way unrolled dot product.
    // MiniC register-allocates only the first twelve doubles declared in
    // a function; p12..p15 below therefore live in the stack frame and
    // are reused by every (i,j) iteration — the same stack-temporary
    // reuse the -O3 FORTRAN compiler produced in matrix300's inner loop,
    // and the reason stack renaming (not just register renaming) is
    // needed to expose this program's parallelism (paper Table 4).
    double p0;  double p1;  double p2;  double p3;
    double p4;  double p5;  double p6;  double p7;
    double p8;  double p9;  double p10; double p11;
    double p12; double p13; double p14; double p15;
    int i;
    int j;
    int k;
    for (i = 0; i < 20; i = i + 1) {
        for (j = 0; j < 20; j = j + 1) {
            a[i][j] = (i + j) * 0.0625;
            b[i][j] = (i - j) * 0.03125;
            c[i][j] = 0.0;
        }
    }
    int pass;
    for (pass = 0; pass < %d; pass = pass + 1) {
        for (i = 0; i < 20; i = i + 1) {
            for (j = 0; j < 20; j = j + 1) {
                p12 = 0.0; p13 = 0.0; p14 = 0.0; p15 = 0.0;
                for (k = 0; k < 20; k = k + 4) {
                    p12 = p12 + a[i][k] * b[k][j];
                    p13 = p13 + a[i][k+1] * b[k+1][j];
                    p14 = p14 + a[i][k+2] * b[k+2][j];
                    p15 = p15 + a[i][k+3] * b[k+3][j];
                }
                c[i][j] = p12 + p13 + p14 + p15;
            }
        }
        // Feed the product back so successive passes are dependent,
        // as the original's repeated sweeps were.
        for (i = 0; i < 20; i = i + 1) {
            for (j = 0; j < 20; j = j + 1) {
                a[i][j] = c[i][j] * 0.001 + a[i][j] * 0.5;
            }
        }
    }
    p0 = c[3][4]; p1 = c[19][19];
    print_str("matrixx ");
    print_double(p0); print_char(32);
    print_double(p1);
    print_char(10);
    return 0;
}
`, 3*scale)
}

// naskerx models nasker (the NAS kernels): floating-point loops dominated
// by first-order linear recurrences and reductions, so the available
// parallelism saturates near 51x once registers are renamed and barely
// moves with memory renaming (Table 4) — the recurrences, not storage,
// are the limit.
func naskerxSource(scale int) string {
	return fmt.Sprintf(`
// naskerx: recurrence-bound FP kernels (models nasker)
double x[512];
double y[512];
double z[512];
double w[512];

int main() {
    int i;
    for (i = 0; i < 512; i = i + 1) {
        x[i] = 0.001 * i;
        y[i] = 1.0 - 0.0005 * i;
        z[i] = 0.25;
        w[i] = 0.5;
    }
    int pass;
    double checksum = 0.0;
    for (pass = 0; pass < %d; pass = pass + 1) {
        // Kernel 1: eight interleaved first-order recurrences (the NAS
        // kernels' vectorizable-but-recurrent flavour: chains of length
        // 64 bound the critical path).
        for (i = 8; i < 512; i = i + 1) {
            x[i] = x[i-8] * 0.5 + y[i];
        }
        // Kernel 2: DAXPY-style independent update.
        for (i = 0; i < 512; i = i + 1) {
            z[i] = z[i] + 0.3 * x[i] + 0.1 * y[i];
        }
        // Kernel 3: polynomial evaluation (independent per element).
        for (i = 0; i < 512; i = i + 1) {
            double v = w[i];
            w[i] = 0.98 * v + 0.002 * (v * v - v * v * v * 0.3333);
        }
        // Kernel 4: strided reduction (four chains of 128).
        double d0 = 0.0;
        double d1 = 0.0;
        double d2 = 0.0;
        double d3 = 0.0;
        for (i = 0; i < 512; i = i + 4) {
            d0 = d0 + y[i] * z[i];
            d1 = d1 + y[i+1] * z[i+1];
            d2 = d2 + y[i+2] * z[i+2];
            d3 = d3 + y[i+3] * z[i+3];
        }
        checksum = checksum + d0 + d1 + d2 + d3;
    }
    print_str("naskerx ");
    print_double(checksum);
    print_char(10);
    return 0;
}
`, 4*scale)
}

// spicex models spice2g6 (analog circuit simulation): sparse-matrix
// indexing arithmetic (int) interleaved with device-model evaluation (FP),
// the paper's one "Int and FP" benchmark. Device evaluations are
// independent; the sparse Gauss-Seidel update is a serial sweep; the mix
// lands in the ~100x parallelism band of the original.
func spicexSource(scale int) string {
	return fmt.Sprintf(`
// spicex: sparse solve + device evaluation (models spice2g6)
int rowptr[129];
int colidx[1024];
double val[1024];
double xv[128];
double rhs[128];
double gdev[128];
int nnz = 0;

void buildmatrix(int seed) {
    int i;
    int s = seed;
    nnz = 0;
    for (i = 0; i < 128; i = i + 1) {
        rowptr[i] = nnz;
        // Diagonal plus up to 6 pseudo-random off-diagonals.
        colidx[nnz] = i;
        val[nnz] = 4.0 + (i %% 7) * 0.125;
        nnz = nnz + 1;
        int k;
        for (k = 0; k < 6; k = k + 1) {
            s = (s * 1103515245 + 12345) & 0x7fffffff;
            int c = s %% 128;
            if (c != i) {
                colidx[nnz] = c;
                val[nnz] = 0.0 - 0.2 - (s %% 100) * 0.001;
                nnz = nnz + 1;
            }
        }
    }
    rowptr[128] = nnz;
    for (i = 0; i < 128; i = i + 1) {
        xv[i] = 0.0;
        rhs[i] = 1.0 + (i %% 5) * 0.25;
    }
}

// Device model: independent per-device FP polynomial evaluation
// (diode-style conductance updates).
void devices() {
    int d;
    for (d = 0; d < 128; d = d + 1) {
        double v = xv[d];
        double e = 1.0 + v + v * v * 0.5 + v * v * v * 0.1666;
        gdev[d] = 0.01 * (e - 1.0) / (v + 0.026);
    }
}

// One Gauss-Seidel sweep: serial through rows (uses freshly updated x).
double sweep() {
    int i;
    double norm = 0.0;
    for (i = 0; i < 128; i = i + 1) {
        double acc = rhs[i] + gdev[i];
        double diag = 1.0;
        int k;
        for (k = rowptr[i]; k < rowptr[i+1]; k = k + 1) {
            int c = colidx[k];
            if (c == i) { diag = val[k]; }
            else { acc = acc - val[k] * xv[c]; }
        }
        double nx = acc / diag;
        double d = nx - xv[i];
        if (d < 0.0) { d = 0.0 - d; }
        norm = norm + d;
        xv[i] = nx;
    }
    return norm;
}

int main() {
    buildmatrix(4242);
    int iter;
    double norm = 0.0;
    for (iter = 0; iter < %d; iter = iter + 1) {
        devices();
        norm = sweep();
    }
    print_str("spicex ");
    print_double(norm); print_char(32);
    print_double(xv[7]);
    print_char(10);
    return 0;
}
`, 24*scale)
}

// tomcatvx models tomcatv (vectorized mesh generation): Jacobi-style
// relaxation sweeps over 2-D arrays allocated on the stack, exactly the
// storage pattern that made tomcatv's parallelism invisible until stack
// renaming was enabled (Table 4: 67x with registers renamed, 5,772x with
// the stack renamed). Every interior point of a sweep is independent.
func tomcatvxSource(scale int) string {
	return fmt.Sprintf(`
// tomcatvx: stack-array mesh relaxation (models tomcatv)
int main() {
    double x[24][24];
    double y[24][24];
    double nx[24][24];
    // Per-point stencil temporaries, as tomcatv's inner loop computes
    // XX/YX/XY/YY/AA/DD before the update. Declared after the arrays,
    // the later ones overflow MiniC's 12 FP variable registers onto the
    // stack; their reuse every point is why tomcatv needed stack
    // renaming in the paper's Table 4 (67x -> 5,772x).
    double xx; double yx; double xy; double yy;
    double aa; double bb; double cc; double dd;
    double rx; double ry; double qi; double qj;
    double t1; double t2; double t3; double t4;
    int i;
    int j;
    for (i = 0; i < 24; i = i + 1) {
        for (j = 0; j < 24; j = j + 1) {
            x[i][j] = i * 0.125 + j * 0.0625;
            y[i][j] = (i - j) * 0.03125;
            nx[i][j] = 0.0;
        }
    }
    int sweep;
    double resid = 0.0;
    for (sweep = 0; sweep < %d; sweep = sweep + 1) {
        for (i = 1; i < 23; i = i + 1) {
            for (j = 1; j < 23; j = j + 1) {
                xx = x[i+1][j] - x[i-1][j];
                yx = y[i+1][j] - y[i-1][j];
                xy = x[i][j+1] - x[i][j-1];
                yy = y[i][j+1] - y[i][j-1];
                aa = xy * xy + yy * yy;
                bb = xx * xy + yx * yy;
                cc = xx * xx + yx * yx;
                qi = x[i-1][j] + x[i+1][j] + x[i][j-1] + x[i][j+1];
                qj = y[i-1][j] + y[i+1][j] + y[i][j-1] + y[i][j+1];
                t1 = aa * qi - bb * qj;
                t2 = cc * qj - bb * qi;
                t3 = aa + cc + 0.5;
                t4 = t1 * 0.125 + t2 * 0.03125;
                dd = t4 / t3;
                nx[i][j] = 0.25 * qi + 0.01 * dd;
            }
        }
        resid = 0.0;
        for (i = 1; i < 23; i = i + 1) {
            for (j = 1; j < 23; j = j + 1) {
                rx = nx[i][j] - x[i][j];
                if (rx < 0.0) { rx = 0.0 - rx; }
                resid = resid + rx;
                x[i][j] = nx[i][j];
            }
        }
    }
    print_str("tomcatvx ");
    print_double(resid); print_char(32);
    print_double(x[12][12]);
    print_char(10);
    return 0;
}
`, 10*scale)
}

func init() {
	register(&Workload{
		Name: "doducx", Original: "doduc", Language: "FORTRAN", BenchType: "FP",
		Description:  "Monte-Carlo particle chains with shared accumulators",
		Source:       doducxSource,
		ExpectOutput: "doducx 786.0930728905504 415.6911928659909 0\n",
	})
	register(&Workload{
		Name: "fppppx", Original: "fpppp", Language: "FORTRAN", BenchType: "FP",
		Description:  "wide straight-line FP expression blocks (electron integrals)",
		Source:       fppppxSource,
		ExpectOutput: "fppppx 22.488654318820224\n",
	})
	register(&Workload{
		Name: "matrixx", Original: "matrix300", Language: "FORTRAN", BenchType: "FP",
		Description:  "dense matrix multiply over stack-allocated arrays",
		Source:       matrixxSource,
		ExpectOutput: "matrixx 0.9903596267700197 -2.350062608718872\n",
	})
	register(&Workload{
		Name: "naskerx", Original: "nasker", Language: "FORTRAN", BenchType: "FP",
		Description:  "FP kernels bounded by first-order recurrences and reductions",
		Source:       naskerxSource,
		ExpectOutput: "naskerx 3108.1666799999994\n",
	})
	register(&Workload{
		Name: "spicex", Original: "spice2g6", Language: "FORTRAN", BenchType: "Int and FP",
		Description:  "sparse Gauss-Seidel solve interleaved with device-model evaluation",
		Source:       spicexSource,
		ExpectOutput: "spicex 0 0.5911632024649365\n",
	})
	register(&Workload{
		Name: "tomcatvx", Original: "tomcatv", Language: "FORTRAN", BenchType: "FP",
		Description:  "Jacobi mesh relaxation over stack-allocated 2-D arrays",
		Source:       tomcatvxSource,
		ExpectOutput: "tomcatvx 0.08860240117704091 2.2524409496057025\n",
	})
}
