package paragraph

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (and per extension experiment from DESIGN.md).
// Each benchmark regenerates its experiment's rows/series and reports the
// headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// both exercises the full pipeline and prints the reproduced numbers.
// Scale up with -paragraph.scale=N to approach the paper's trace lengths.

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"paragraph/internal/core"
	"paragraph/internal/cpu"
	"paragraph/internal/harness"
	"paragraph/internal/isa"
	"paragraph/internal/minic"
	"paragraph/internal/shard"
	"paragraph/internal/trace"
	"paragraph/internal/workloads"
)

var benchScale = flag.Int("paragraph.scale", 1, "workload scale factor for benchmarks")

var benchSpecEvents = flag.Int("paragraph.specevents", 10_000_000,
	"trace length (events) for BenchmarkSpeculativeShards")

func benchSuite() *harness.Suite { return harness.NewSuite(*benchScale) }

// BenchmarkTable1Latencies checks the latency table is what the paper
// specifies (configuration, not measurement; kept as a bench for the
// one-bench-per-table convention).
func BenchmarkTable1Latencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, row := range harness.Table1() {
			_ = row.Steps
		}
	}
	b.ReportMetric(float64(isa.ClassIntDiv.Latency()), "intdiv-steps")
	b.ReportMetric(float64(isa.ClassFPMul.Latency()), "fpmul-steps")
}

// BenchmarkTable2Inventory runs every workload once per iteration and
// reports the total dynamic instruction count of the suite.
func BenchmarkTable2Inventory(b *testing.B) {
	s := benchSuite()
	var total uint64
	for i := 0; i < b.N; i++ {
		rows, err := s.Table2(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, r := range rows {
			total += r.Instructions
		}
	}
	b.ReportMetric(float64(total), "trace-instructions")
}

// BenchmarkTable3Dataflow regenerates the dataflow-limit table and reports
// the extremes of available parallelism across the suite.
func BenchmarkTable3Dataflow(b *testing.B) {
	s := benchSuite()
	var minAvail, maxAvail float64
	for i := 0; i < b.N; i++ {
		rows, err := s.Table3(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		minAvail, maxAvail = rows[0].ConsAvailable, rows[0].ConsAvailable
		for _, r := range rows {
			if r.ConsAvailable < minAvail {
				minAvail = r.ConsAvailable
			}
			if r.ConsAvailable > maxAvail {
				maxAvail = r.ConsAvailable
			}
		}
	}
	// The paper: "ranging from 13 to 23,302 operations per cycle".
	b.ReportMetric(minAvail, "min-available")
	b.ReportMetric(maxAvail, "max-available")
}

// BenchmarkTable4Renaming regenerates the renaming table and reports the
// geometric-mean step from no renaming to full renaming.
func BenchmarkTable4Renaming(b *testing.B) {
	s := benchSuite()
	var regsOverNone, memOverRegs float64
	for i := 0; i < b.N; i++ {
		rows, err := s.Table4(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		regsOverNone, memOverRegs = 1, 1
		for _, r := range rows {
			regsOverNone *= r.Regs / r.NoRenaming
			memOverRegs *= r.RegsMem / r.Regs
		}
		n := float64(len(rows))
		regsOverNone = pow(regsOverNone, 1/n)
		memOverRegs = pow(memOverRegs, 1/n)
	}
	b.ReportMetric(regsOverNone, "gmean-regs/none")
	b.ReportMetric(memOverRegs, "gmean-mem/regs")
}

func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, y)
}

// BenchmarkFigure7Profiles regenerates every parallelism profile and
// reports the burstiness (peak over average) of the suite.
func BenchmarkFigure7Profiles(b *testing.B) {
	s := benchSuite()
	var burst float64
	for i := 0; i < b.N; i++ {
		profiles, err := s.Figure7(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		burst = 0
		for _, p := range profiles {
			if p.Available > 0 && p.PeakOps/p.Available > burst {
				burst = p.PeakOps / p.Available
			}
		}
	}
	// The paper: "parallelism can be bursty in nature".
	b.ReportMetric(burst, "max-peak/avg")
}

// BenchmarkFigure8Window regenerates the window sweep with a reduced set of
// sizes and reports the parallelism exposed by a 128-instruction window
// (the paper: "modest levels of parallelism ... with window sizes as small
// as 100 instructions").
func BenchmarkFigure8Window(b *testing.B) {
	s := benchSuite()
	sizes := []int{1, 16, 128, 4096, 65536, 0}
	var atSmall, minPct float64
	for i := 0; i < b.N; i++ {
		series, err := s.Figure8(context.Background(), sizes)
		if err != nil {
			b.Fatal(err)
		}
		atSmall, minPct = 1e18, 100
		for _, ser := range series {
			for _, pt := range ser.Points {
				if pt.Window == 128 {
					if pt.Available < atSmall {
						atSmall = pt.Available
					}
					if pt.Percent < minPct {
						minPct = pt.Percent
					}
				}
			}
		}
	}
	b.ReportMetric(atSmall, "min-avail@128")
	b.ReportMetric(minPct, "min-pct@128")
}

// BenchmarkResourceLimits sweeps functional-unit counts (extension E8).
func BenchmarkResourceLimits(b *testing.B) {
	s := benchSuite()
	s.Workloads = pick("naskerx", "doducx")
	var oneFU float64
	for i := 0; i < b.N; i++ {
		rows, err := s.FunctionalUnits(context.Background(), []int{1, 8, 64, 0})
		if err != nil {
			b.Fatal(err)
		}
		oneFU = rows[0].Avail[0]
	}
	b.ReportMetric(oneFU, "avail@1FU")
}

// BenchmarkLifetimes collects the lifetime/sharing distributions
// (extension E9).
func BenchmarkLifetimes(b *testing.B) {
	s := benchSuite()
	s.Workloads = pick("doducx")
	var meanLife, meanShare float64
	for i := 0; i < b.N; i++ {
		rows, err := s.Lifetimes(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		meanLife = rows[0].Lifetimes.Mean()
		meanShare = rows[0].Sharing.Mean()
	}
	b.ReportMetric(meanLife, "mean-lifetime")
	b.ReportMetric(meanShare, "mean-sharing")
}

// BenchmarkAblationUnrolling measures the compiler second-order effect
// (extension E7).
func BenchmarkAblationUnrolling(b *testing.B) {
	s := benchSuite()
	var shrink float64
	for i := 0; i < b.N; i++ {
		rows, err := s.AblationUnroll(context.Background(), "naskerx", []int{1, 4})
		if err != nil {
			b.Fatal(err)
		}
		shrink = float64(rows[0].Instructions) / float64(rows[1].Instructions)
	}
	b.ReportMetric(shrink, "instr-shrink@4x")
}

// BenchmarkAnalyzerThroughput measures the analyzer's raw event rate — the
// quantity that made the paper's runs take "approximately 10 hours on a
// DECstation 3100" per point.
func BenchmarkAnalyzerThroughput(b *testing.B) {
	w, _ := workloads.ByName("naskerx")
	prog, err := w.Build(*benchScale, minic.Options{})
	if err != nil {
		b.Fatal(err)
	}
	// Pre-trace into memory once.
	var events []trace.Event
	sink := trace.SinkFunc(func(e *trace.Event) error {
		events = append(events, *e)
		return nil
	})
	m, err := cpu.New(prog, cpu.WithTrace(sink))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		b.Fatal(err)
	}
	cfg := core.Dataflow(core.SyscallConservative)
	cfg.Profile = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := core.NewAnalyzer(cfg)
		for j := range events {
			if err := a.Event(&events[j]); err != nil {
				b.Fatal(err)
			}
		}
		a.MustFinish()
	}
	b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkFanOut measures the parallel analysis engine against the serial
// reference on the same pre-recorded trace: xlispx is simulated once into an
// EventBuffer, then the Table3+Table4+Figure8 configuration union (10
// analyzer configs) replays it with one worker versus a GOMAXPROCS pool.
// The serial/parallel ratio is the headline speedup in README's
// "Performance" section; `make bench` captures it in BENCH_parallel.json.
func BenchmarkFanOut(b *testing.B) {
	w, _ := workloads.ByName("xlispx")
	prog, err := w.Build(*benchScale, minic.Options{})
	if err != nil {
		b.Fatal(err)
	}
	buf := &trace.EventBuffer{}
	m, err := cpu.New(prog, cpu.WithTrace(buf))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Run(0); err != nil {
		b.Fatal(err)
	}

	var cfgs []core.Config
	for _, p := range []core.SyscallPolicy{core.SyscallConservative, core.SyscallOptimistic} {
		cfg := core.Dataflow(p)
		cfg.Profile = false
		cfgs = append(cfgs, cfg)
	}
	cfgs = append(cfgs,
		core.Config{Syscalls: core.SyscallConservative},
		core.Config{Syscalls: core.SyscallConservative, RenameRegisters: true},
		core.Config{Syscalls: core.SyscallConservative, RenameRegisters: true, RenameStack: true},
		core.Config{Syscalls: core.SyscallConservative, RenameRegisters: true, RenameStack: true, RenameData: true},
	)
	for _, size := range []int{1, 128, 8192, 0} {
		cfg := core.Dataflow(core.SyscallConservative)
		cfg.Profile = false
		cfg.WindowSize = size
		cfgs = append(cfgs, cfg)
	}

	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // GOMAXPROCS
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := harness.FanOut(context.Background(), buf, cfgs, bc.workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(buf.Len())*float64(len(cfgs))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkSuiteEngines compares whole experiment drivers end to end: the
// fully serial suite (one workload at a time, streaming analysis) against
// the fully parallel one (concurrent workloads, each fanning its recorded
// trace out to all four renaming configurations).
func BenchmarkSuiteEngines(b *testing.B) {
	for _, bc := range []struct {
		name string
		jobs int
	}{
		{"serial", 1},
		{"parallel", 0}, // GOMAXPROCS
	} {
		b.Run(bc.name, func(b *testing.B) {
			s := benchSuite()
			s.Workloads = pick("xlispx", "naskerx", "matrixx")
			s.Parallelism = bc.jobs
			s.Concurrency = bc.jobs
			for i := 0; i < b.N; i++ {
				if _, err := s.Table4(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures the CPU simulator's instruction
// rate (the Pixie-analogue side of the pipeline).
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, _ := workloads.ByName("naskerx")
	prog, err := w.Build(*benchScale, minic.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var total uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := cpu.New(prog)
		if err != nil {
			b.Fatal(err)
		}
		n, err := m.Run(0)
		if err != nil {
			b.Fatal(err)
		}
		total += n
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkCompiler measures MiniC compilation speed over the whole
// workload suite.
func BenchmarkCompiler(b *testing.B) {
	srcs := make([]string, 0, 10)
	for _, w := range workloads.All() {
		srcs = append(srcs, w.Source(1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, src := range srcs {
			if _, err := minic.Build(src, minic.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func pick(names ...string) []*workloads.Workload {
	out := make([]*workloads.Workload, 0, len(names))
	for _, n := range names {
		w, ok := workloads.ByName(n)
		if !ok {
			panic(fmt.Sprintf("unknown workload %q", n))
		}
		out = append(out, w)
	}
	return out
}

// BenchmarkBranchPrediction sweeps the control-dependency models
// (extension E10) and reports how much of the dataflow limit a two-bit
// predictor exposes.
func BenchmarkBranchPrediction(b *testing.B) {
	s := benchSuite()
	s.Workloads = pick("xlispx", "doducx")
	var frac float64
	for i := 0; i < b.N; i++ {
		rows, err := s.BranchPrediction(context.Background(), nil)
		if err != nil {
			b.Fatal(err)
		}
		frac = rows[0].Avail[2] / rows[0].Avail[3]
	}
	b.ReportMetric(frac*100, "twobit-pct-of-perfect")
}

// BenchmarkTwoPassFootprint compares the live-well working set of the
// paper's Method-2 (evict on reuse) and Method-1 (two-pass, evict at last
// use) dead-value strategies on a stored cc1x trace.
func BenchmarkTwoPassFootprint(b *testing.B) {
	w, _ := workloads.ByName("cc1x")
	prog, err := w.Build(*benchScale, minic.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := WriteTrace(prog, &buf, 0); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	cfg := core.Dataflow(core.SyscallConservative)
	cfg.Profile = false
	var onePeak, twoPeak int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		one, err := AnalyzeTraceFile(bytes.NewReader(data), cfg)
		if err != nil {
			b.Fatal(err)
		}
		two, err := core.AnalyzeTwoPass(bytes.NewReader(data), cfg)
		if err != nil {
			b.Fatal(err)
		}
		onePeak, twoPeak = one.MaxLiveMemoryWords, two.MaxLiveMemoryWords
	}
	b.ReportMetric(float64(onePeak), "onepass-live-words")
	b.ReportMetric(float64(twoPeak), "twopass-live-words")
}

// BenchmarkShardedAnalysis measures the sharded pipeline against one
// monolithic pass over the same stored trace bytes: the trace is split at
// chunk boundaries and analyzed with decode of shard i+1 overlapped with
// analysis of shard i (internal/shard). On a multi-core machine the
// sharded/N=GOMAXPROCS case is the wall-clock win; the merged Result is
// deep-equal to the monolithic one either way (the differential battery
// enforces that — here it is just spot-checked).
func BenchmarkShardedAnalysis(b *testing.B) {
	w, _ := workloads.ByName("cc1x")
	prog, err := w.Build(*benchScale, minic.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := WriteTrace(prog, &buf, 0); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	cfg := core.Dataflow(core.SyscallConservative)
	cfg.Profile = false

	ref, err := AnalyzeTraceFile(bytes.NewReader(data), cfg)
	if err != nil {
		b.Fatal(err)
	}
	events := float64(ref.Instructions)

	b.Run("monolithic", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := AnalyzeTraceFile(bytes.NewReader(data), cfg); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(events*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
	for _, n := range []int{2, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("sharded-%d", n), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			var res *core.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, _, err = shard.Analyze(context.Background(), data, cfg, n, shard.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if res.CriticalPath != ref.CriticalPath || res.Operations != ref.Operations {
				b.Fatalf("sharded result drifted: critical path %d vs %d", res.CriticalPath, ref.CriticalPath)
			}
			b.ReportMetric(events*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// synthSpecStream writes a deterministic mixed event stream (ALU, loads,
// stores, branches, the odd syscall) straight into a v2 trace writer. No
// CPU simulation runs, so the 10M+ event traces the speculative benchmark
// wants regenerate in a couple of seconds instead of minutes.
func synthSpecStream(b *testing.B, n int) []byte {
	b.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	regs := []isa.Reg{isa.T0, isa.T1, isa.T2, isa.S0, isa.S1, isa.A0, isa.V0}
	r := func() isa.Reg { return regs[rng.Intn(len(regs))] }
	pc := uint32(0x400000)
	for i := 0; i < n; i++ {
		var e trace.Event
		switch rng.Intn(10) {
		case 0, 1, 2:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.ADDI, Rt: r(), Rs: r(), Imm: int32(rng.Intn(64) - 32)}}
		case 3, 4:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.ADDU, Rd: r(), Rs: r(), Rt: r()}}
		case 5:
			addr := 0x10000000 + uint32(rng.Intn(1<<14))*4
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.LW, Rt: r(), Rs: isa.GP},
				MemAddr: addr, MemSize: 4, Seg: trace.SegData}
		case 6:
			addr := 0x10000000 + uint32(rng.Intn(1<<14))*4
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.SW, Rt: r(), Rs: isa.GP},
				MemAddr: addr, MemSize: 4, Seg: trace.SegData}
		case 7:
			addr := 0x7fff0000 + uint32(rng.Intn(1<<8))*4
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.SW, Rt: r(), Rs: isa.SP},
				MemAddr: addr, MemSize: 4, Seg: trace.SegStack}
		case 8:
			e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.BNE, Rs: r(), Rt: isa.Zero, Imm: -16},
				Taken: rng.Intn(2) == 0}
		default:
			if rng.Intn(50) == 0 {
				e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.SYSCALL}}
			} else {
				e = trace.Event{PC: pc, Ins: isa.Instruction{Op: isa.LUI, Rt: r(), Imm: int32(rng.Intn(1 << 10))}}
			}
		}
		if err := w.Event(&e); err != nil {
			b.Fatal(err)
		}
		pc += 4
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkSpeculativeShards pits the chained shard runner (decode overlap
// only; analysis is a sequential relay) against the speculative runner
// (all shards build relocatable deltas concurrently, then a cheap
// sequential splice resolves the seams) on one long synthetic trace.
// On a multi-core machine the speculative/4 case is the wall-clock win;
// on a single core it measures the compile+splice overhead instead. Both
// paths are spot-checked against a monolithic pass (the differential
// battery owns full deep-equality). Trace length defaults to 10M events;
// shrink with -paragraph.specevents for quick runs.
func BenchmarkSpeculativeShards(b *testing.B) {
	data := synthSpecStream(b, *benchSpecEvents)
	cfg := core.Dataflow(core.SyscallConservative)
	cfg.Profile = false

	ref, err := AnalyzeTraceFile(bytes.NewReader(data), cfg)
	if err != nil {
		b.Fatal(err)
	}
	events := float64(ref.Instructions)

	check := func(b *testing.B, res *core.Result) {
		b.Helper()
		if res.CriticalPath != ref.CriticalPath || res.Operations != ref.Operations {
			b.Fatalf("sharded result drifted: critical path %d vs %d", res.CriticalPath, ref.CriticalPath)
		}
	}
	shards := 4
	b.Run("chained-4", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		var res *core.Result
		for i := 0; i < b.N; i++ {
			var err error
			res, _, err = shard.Analyze(context.Background(), data, cfg, shards, shard.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		check(b, res)
		b.ReportMetric(events*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
	b.Run("speculative-4", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		var res *core.Result
		for i := 0; i < b.N; i++ {
			var err error
			res, _, err = shard.Analyze(context.Background(), data, cfg, shards, shard.Options{Speculate: true})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		check(b, res)
		b.ReportMetric(events*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
}

// BenchmarkBoundedReplay pits the whole-trace buffered fan-out against the
// bounded-ring streaming fan-out on the same four-config analysis of one
// synthetic trace. Besides throughput, each engine reports the bytes it
// holds for event delivery: the buffer's grows with the trace, the ring's
// is a fixed few MB regardless of length — the constant-memory claim as a
// tracked number (see BENCH_memory.json).
func BenchmarkBoundedReplay(b *testing.B) {
	const nevents = 2_000_000
	data := synthSpecStream(b, nevents)
	var cfgs []core.Config
	for _, size := range []int{64, 256, 1024, 4096} {
		cfg := core.Dataflow(core.SyscallConservative)
		cfg.Profile = false
		cfg.WindowSize = size
		cfgs = append(cfgs, cfg)
	}

	decode := func(sink trace.BatchSink) error {
		r, err := trace.NewReader(bytes.NewReader(data))
		if err != nil {
			return err
		}
		return r.ForEachBatch(sink.Events)
	}

	buf := &trace.EventBuffer{}
	if err := decode(buf); err != nil {
		b.Fatal(err)
	}
	ref, err := harness.FanOut(context.Background(), buf, cfgs, len(cfgs))
	if err != nil {
		b.Fatal(err)
	}
	check := func(b *testing.B, res []*core.Result) {
		b.Helper()
		for i := range res {
			if res[i].CriticalPath != ref[i].CriticalPath || res[i].Operations != ref[i].Operations {
				b.Fatalf("config %d: ring result drifted from buffered replay", i)
			}
		}
	}

	b.Run("buffered-4", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			fresh := &trace.EventBuffer{}
			if err := decode(fresh); err != nil {
				b.Fatal(err)
			}
			if _, err := harness.FanOut(context.Background(), fresh, cfgs, len(cfgs)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(buf.Bytes()), "delivery-bytes")
		b.ReportMetric(float64(nevents)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
	b.Run("ring-4", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		var res []*core.Result
		for i := 0; i < b.N; i++ {
			var err error
			res, _, err = harness.FanOutStream(context.Background(), func(ring *trace.Ring) error {
				return decode(ring)
			}, cfgs, 0)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		check(b, res)
		b.ReportMetric(float64(trace.RingFootprint(trace.DefaultRingBatches, 0)), "delivery-bytes")
		b.ReportMetric(float64(nevents)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
}
